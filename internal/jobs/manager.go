package jobs

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"sidr"
	"sidr/internal/cluster"
	"sidr/internal/coords"
	"sidr/internal/core"
	"sidr/internal/exec"
	"sidr/internal/hdfs"
	"sidr/internal/join"
	"sidr/internal/metrics"
	"sidr/internal/ops"
	"sidr/internal/query"
	"sidr/internal/sidx"
	"sidr/internal/skew"
)

// Errors reported by Submit and lookup paths.
var (
	// ErrQueueFull is admission control rejecting a submission because
	// the job queue is at capacity.
	ErrQueueFull = errors.New("jobs: queue full")
	// ErrShuttingDown rejects submissions after Shutdown began.
	ErrShuttingDown = errors.New("jobs: manager shutting down")
	// ErrUnknownJob is returned for lookups of ids never issued.
	ErrUnknownJob = errors.New("jobs: unknown job")
	// ErrClusterDisabled rejects cluster-routed submissions when the
	// manager has no coordinator configured.
	ErrClusterDisabled = errors.New("jobs: clustered execution not enabled")
	// ErrTenantQuota is per-tenant admission control rejecting a
	// submission because the tenant is at its max-in-flight quota; the
	// server answers 429 with detail "tenant-quota".
	ErrTenantQuota = errors.New("jobs: tenant quota exceeded")
)

// DatasetProvider resolves dataset names to open datasets. Acquire
// returns the dataset and a release func the manager calls when the job
// is finished with it; implementations refcount handles so concurrent
// jobs share them.
type DatasetProvider interface {
	Acquire(name, variable string) (*sidr.Dataset, func(), error)
}

// DatasetSpecProvider is the optional second half of a DatasetProvider:
// it describes a registered dataset as a cluster.DatasetSpec that
// sidr-worker processes can resolve on their own (a file path, or a
// deterministic synthetic generator). Cluster-routed jobs require the
// manager's provider to implement it.
type DatasetSpecProvider interface {
	DatasetSpec(name, variable string) (cluster.DatasetSpec, error)
}

// IndexProvider is an optional DatasetProvider extension: it returns
// the structural block-range index (internal/sidx) built for a
// registered dataset variable, or nil when none exists. When the
// provider implements it, the manager consults the index to prune
// value-predicated queries' split sets before execution — in-process
// via RunOptions.Index, clustered via JobPlan.Pruned.
type IndexProvider interface {
	Index(name, variable string) *sidx.VarIndex
}

// Config parametrises a Manager.
type Config struct {
	// MaxConcurrent is the job worker-pool size: how many jobs may be in
	// flight at once (default GOMAXPROCS).
	MaxConcurrent int
	// ExecWorkers sizes the single process-wide task executor shared by
	// every running job (default GOMAXPROCS). Map/Reduce tasks from all
	// jobs are dispatched onto this one bounded pool; a job's Workers
	// request caps that job's share rather than spawning its own pool.
	ExecWorkers int
	// QueueDepth bounds queued-but-not-running jobs; submissions beyond
	// it fail with ErrQueueFull (default 64).
	QueueDepth int
	// PlanCacheSize bounds the LRU plan cache (default 128; < 0
	// disables caching).
	PlanCacheSize int
	// RetainJobs caps how many terminal (done/failed/cancelled) jobs
	// the table keeps; the oldest are evicted — results, partial logs
	// and all — once the cap is exceeded, so a long-running daemon does
	// not retain every query's output forever (default 256; < 0 keeps
	// all).
	RetainJobs int
	// Datasets resolves dataset names (required).
	Datasets DatasetProvider
	// Cluster, when set, enables Request.Cluster jobs: the coordinator
	// dispatches their Map tasks to registered worker processes and runs
	// their Reduce tasks over the networked shuffle. Reduce tasks still
	// execute on this manager's shared executor, so reduce-first
	// scheduling and the process-wide concurrency budget apply.
	Cluster *cluster.Coordinator
	// ResultCacheBytes is the byte budget of the versioned result cache
	// (default 64 MiB; < 0 disables caching). Entries are keyed on
	// {dataset version, canonical query, engine, plan parameters} and
	// store the finished wire-format result.
	ResultCacheBytes int64
	// Tenants maps tenant names to explicit admission policies; tenants
	// absent from the map fall back to TenantDefault.
	Tenants map[string]TenantPolicy
	// TenantDefault applies to every tenant without an explicit policy
	// (zero value: unlimited in-flight, weight 1).
	TenantDefault TenantPolicy
	// Metrics receives job and plan-cache instrumentation (default: a
	// private registry).
	Metrics *metrics.Registry
	// Namespace, when set alongside Cluster, attaches HDFS block
	// placements to cluster jobs whose dataset is registered in it, so
	// the coordinator can prefer split-local workers. Locality hints
	// never change split geometry or results — only placement.
	Namespace *hdfs.Namespace
}

// VersionProvider is an optional DatasetProvider extension: it returns
// an opaque version token for a registered dataset variable that
// changes whenever the dataset's contents could have changed
// (re-registration bumps a generation; shape and structural-index
// fingerprints ride along). The result cache requires it — without a
// version to pin, cached results could go stale, so managers whose
// provider lacks it simply never hit.
type VersionProvider interface {
	DatasetVersion(name, variable string) (string, bool)
}

// Manager owns the worker pool, job table and plan cache.
type Manager struct {
	cfg   Config
	queue chan *Job
	cache *planCache
	exec  *exec.Executor
	seq   atomic.Int64
	wg    sync.WaitGroup

	rcache *resultCache

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string
	collapse map[string]*Job // fast key -> live leader job
	inflight map[string]int  // tenant -> non-terminal job count
	closed   bool

	mSubmitted, mDone, mFailed, mCancelled, mRejected, mEvicted *metrics.Counter
	mPlanHits, mPlanMisses, mPlanEvictions                      *metrics.Counter
	mSidxHits, mSidxMisses, mSidxPruned                         *metrics.Counter
	mCollapsed, mTenantRejected                                 *metrics.Counter
	gQueued, gRunning, gPlanSize                                *metrics.Gauge
	gSkewKeyblocks, gSkewStarved, gSkewMax                      *metrics.Gauge
	gSkewMaxOverMean, gSkewCV, gSkewGini                        *metrics.Gauge
	hQuerySeconds, hFirstResultSeconds                          *metrics.Histogram
}

// NewManager starts the worker pool and returns the manager.
func NewManager(cfg Config) (*Manager, error) {
	if cfg.Datasets == nil {
		return nil, fmt.Errorf("jobs: config needs a dataset provider")
	}
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if cfg.ExecWorkers <= 0 {
		cfg.ExecWorkers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.PlanCacheSize == 0 {
		cfg.PlanCacheSize = 128
	}
	if cfg.RetainJobs == 0 {
		cfg.RetainJobs = 256
	}
	if cfg.ResultCacheBytes == 0 {
		cfg.ResultCacheBytes = 64 << 20
	}
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.New()
	}
	m := &Manager{
		cfg:      cfg,
		queue:    make(chan *Job, cfg.QueueDepth),
		exec:     exec.New(cfg.ExecWorkers),
		jobs:     make(map[string]*Job),
		collapse: make(map[string]*Job),
		inflight: make(map[string]int),

		mSubmitted:          cfg.Metrics.Counter("sidrd_jobs_submitted_total"),
		mDone:               cfg.Metrics.Counter("sidrd_jobs_done_total"),
		mFailed:             cfg.Metrics.Counter("sidrd_jobs_failed_total"),
		mCancelled:          cfg.Metrics.Counter("sidrd_jobs_cancelled_total"),
		mRejected:           cfg.Metrics.Counter("sidrd_jobs_rejected_total"),
		mEvicted:            cfg.Metrics.Counter("sidrd_jobs_evicted_total"),
		mPlanHits:           cfg.Metrics.Counter("sidrd_plan_cache_hits_total"),
		mPlanMisses:         cfg.Metrics.Counter("sidrd_plan_cache_misses_total"),
		mPlanEvictions:      cfg.Metrics.Counter("sidrd_plan_cache_evictions_total"),
		mSidxHits:           cfg.Metrics.Counter("sidrd_sidx_hits_total"),
		mSidxMisses:         cfg.Metrics.Counter("sidrd_sidx_misses_total"),
		mSidxPruned:         cfg.Metrics.Counter("sidrd_sidx_pruned_splits_total"),
		mCollapsed:          cfg.Metrics.Counter("sidrd_collapse_followers_total"),
		mTenantRejected:     cfg.Metrics.Counter("sidrd_tenant_rejected_total"),
		gQueued:             cfg.Metrics.Gauge("sidrd_jobs_queued"),
		gRunning:            cfg.Metrics.Gauge("sidrd_jobs_running"),
		gPlanSize:           cfg.Metrics.Gauge("sidrd_plan_cache_size"),
		gSkewKeyblocks:      cfg.Metrics.Gauge("sidrd_job_skew_keyblocks"),
		gSkewStarved:        cfg.Metrics.Gauge("sidrd_job_skew_starved"),
		gSkewMax:            cfg.Metrics.Gauge("sidrd_job_skew_max_load"),
		gSkewMaxOverMean:    cfg.Metrics.Gauge("sidrd_job_skew_max_over_mean_milli"),
		gSkewCV:             cfg.Metrics.Gauge("sidrd_job_skew_cv_milli"),
		gSkewGini:           cfg.Metrics.Gauge("sidrd_job_skew_gini_milli"),
		hQuerySeconds:       cfg.Metrics.Histogram("sidrd_query_seconds", nil),
		hFirstResultSeconds: cfg.Metrics.Histogram("sidrd_first_result_seconds", nil),
	}
	if cfg.PlanCacheSize > 0 {
		m.cache = newPlanCache(cfg.PlanCacheSize, cfg.Metrics)
	}
	if cfg.ResultCacheBytes > 0 {
		m.rcache = newResultCache(cfg.ResultCacheBytes, cfg.Metrics)
	}
	for w := 0; w < cfg.MaxConcurrent; w++ {
		m.wg.Add(1)
		go func() {
			defer m.wg.Done()
			for j := range m.queue {
				m.gQueued.Add(-1)
				m.runJob(j)
			}
		}()
	}
	return m, nil
}

// parseEngine maps the wire engine name to a sidr.Engine. The mapping
// lives in internal/core so the daemon, the CLIs and the cluster
// workers all accept the same vocabulary.
func parseEngine(s string) (sidr.Engine, error) {
	e, err := core.ParseEngine(s)
	if err != nil {
		return 0, fmt.Errorf("jobs: %w", err)
	}
	return e, nil
}

// Submit validates the request and admits it, trying the serving-tier
// fast paths in order before paying for an execution:
//
//  1. result cache — a finished result for the same {dataset version,
//     canonical query, engine, plan parameters} is served as an
//     already-terminal job, byte-identical to the original run's;
//  2. in-flight collapse — an identical query already executing gains
//     the caller as a follower: it replays the leader's committed
//     partials and then rides the live stream, so N concurrent
//     identical requests cost one execution;
//  3. the queue — a fresh leader job, rejected with ErrQueueFull at
//     capacity.
//
// Per-tenant quotas gate all three: a tenant at its max-in-flight cap
// is refused with ErrTenantQuota before any path is tried.
func (m *Manager) Submit(req Request) (*Job, error) {
	if _, err := parseEngine(req.Engine); err != nil {
		return nil, err
	}
	// Canonicalise the query up front: every spelling of one query maps
	// to one string, so the plan cache, result cache and collapse table
	// all share entries across textual variants.
	canon, err := query.Canonical(req.Query)
	if err != nil {
		return nil, err
	}
	req.Query = canon
	if req.Dataset == "" {
		return nil, fmt.Errorf("jobs: request needs a dataset")
	}
	// A join query reads two datasets; anything else exactly one.
	if pq, perr := query.Parse(canon); perr == nil {
		if pq.Join && req.Dataset2 == "" {
			return nil, fmt.Errorf("jobs: join query needs dataset2")
		}
		if !pq.Join && req.Dataset2 != "" {
			return nil, fmt.Errorf("jobs: dataset2 is only valid with a join query")
		}
	}
	if req.Tenant == "" {
		req.Tenant = DefaultTenantName
	}
	if req.Cluster {
		// Reject unroutable cluster jobs at the door: no coordinator, a
		// provider that cannot describe datasets to workers, or an empty
		// worker table all fail fast instead of queueing a doomed job.
		if m.cfg.Cluster == nil {
			return nil, ErrClusterDisabled
		}
		if _, ok := m.cfg.Datasets.(DatasetSpecProvider); !ok {
			return nil, fmt.Errorf("jobs: dataset provider cannot describe datasets to cluster workers")
		}
		if m.cfg.Cluster.AliveWorkers() == 0 {
			return nil, cluster.ErrNoWorkers
		}
	}
	key, keyed := m.fastKey(req)
	j := newJob(fmt.Sprintf("job-%06d", m.seq.Add(1)), req)
	j.cacheKey = key

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, ErrShuttingDown
	}
	if quota := m.tenantPolicy(req.Tenant).MaxInFlight; quota > 0 && m.inflight[req.Tenant] >= quota {
		m.mu.Unlock()
		m.mTenantRejected.Inc()
		return nil, ErrTenantQuota
	}

	// Fast path 1: a finished result under this exact version-pinned key.
	// The job is born terminal — no queue slot, no tenant in-flight
	// charge — with the cached run's partial log so streams replay the
	// same sequence.
	if keyed && m.rcache != nil {
		if res, ok := m.rcache.get(key); ok {
			j.resultHit = true
			j.partials = append(j.partials, res.Partials...)
			j.started = j.created
			m.jobs[j.ID] = j
			m.order = append(m.order, j.ID)
			m.mu.Unlock()
			j.finish(Done, res, nil)
			m.mSubmitted.Inc()
			m.tenantGauge(req.Tenant) // ensure the gauge exists even for pure-hit tenants
			m.prune()
			return j, nil
		}
	}

	// Fast path 2: the same query is executing right now — attach as a
	// follower of the live leader instead of queueing a duplicate.
	if keyed {
		if leader, ok := m.collapse[key]; ok && leader.attach(j) {
			m.jobs[j.ID] = j
			m.order = append(m.order, j.ID)
			m.inflight[req.Tenant]++
			m.tenantGauge(req.Tenant).Add(1)
			tenant := req.Tenant
			j.notify = func() { m.jobDone(tenant, "", nil) }
			m.mu.Unlock()
			m.mSubmitted.Inc()
			m.mCollapsed.Inc()
			return j, nil
		}
	}

	m.gQueued.Add(1) // before the send: a worker may pop immediately
	select {
	case m.queue <- j:
		m.jobs[j.ID] = j
		m.order = append(m.order, j.ID)
		if keyed {
			m.collapse[key] = j
		}
		m.inflight[req.Tenant]++
		m.tenantGauge(req.Tenant).Add(1)
		tenant := req.Tenant
		j.notify = func() { m.jobDone(tenant, key, j) }
		m.mu.Unlock()
		m.mSubmitted.Inc()
		return j, nil
	default:
		m.gQueued.Add(-1)
		m.mu.Unlock()
		m.mRejected.Inc()
		return nil, ErrQueueFull
	}
}

// jobDone is the terminal-notify hook shared by leaders and followers:
// it releases the tenant's in-flight slot and, for leaders (leader !=
// nil), retires the collapse-table entry. Runs with no job lock held
// (see notifyTerminal).
func (m *Manager) jobDone(tenant, key string, leader *Job) {
	m.mu.Lock()
	if m.inflight[tenant] > 0 {
		m.inflight[tenant]--
	}
	gauge := m.tenantGauge(tenant)
	// Identity check: only the owning leader clears its entry, so a
	// newer leader registered under the same key is never evicted.
	if leader != nil && m.collapse[key] == leader {
		delete(m.collapse, key)
	}
	m.mu.Unlock()
	gauge.Add(-1)
}

// tenantGauge returns the per-tenant in-flight gauge, creating it on
// first use. Callers may hold m.mu; the metrics registry has its own
// lock and never calls back into the manager.
func (m *Manager) tenantGauge(tenant string) *metrics.Gauge {
	return m.cfg.Metrics.Gauge(fmt.Sprintf("sidrd_tenant_inflight{tenant=%q}", tenant))
}

// fastKey derives the result-cache / collapse key for a request: the
// version of EVERY input dataset (contents, not names — both sides of a
// join), canonical query, engine, and the plan parameters that change
// the answer's shape (reducers and split points normalised with
// sidr.Prepare's defaults, max skew, cluster routing). Workers is
// deliberately excluded — it changes only scheduling, never bytes.
// Returns false when the provider cannot version any input; such
// requests always execute.
func (m *Manager) fastKey(req Request) (string, bool) {
	vp, ok := m.cfg.Datasets.(VersionProvider)
	if !ok {
		return "", false
	}
	q, err := query.Parse(req.Query)
	if err != nil {
		return "", false
	}
	ver, ok := vp.DatasetVersion(req.Dataset, q.Variable)
	if !ok {
		return "", false
	}
	var ver2 string
	if q.Join {
		// Both inputs pin the key: a re-registration of EITHER side must
		// change it, or a stale join result could be served.
		if ver2, ok = vp.DatasetVersion(req.Dataset2, q.Variable2); !ok {
			return "", false
		}
	}
	reducers := req.Reducers
	if reducers <= 0 {
		reducers = 4
	}
	splitPoints := req.SplitPoints
	if splitPoints <= 0 {
		splitPoints = defaultSplitPoints(q)
	}
	return fmt.Sprintf("%s\x1f%s\x1f%s\x1f%s\x1f%d\x1f%d\x1f%d\x1f%t",
		ver, ver2, req.Query, req.Engine, reducers, splitPoints, req.MaxSkew, req.Cluster), true
}

// defaultSplitPoints mirrors sidr.Prepare's (and JoinSplitPoints')
// default split granularity so keyed requests normalise identically to
// what actually executes.
func defaultSplitPoints(q *query.Query) int64 {
	n := q.Input.Size()
	if q.Join {
		if s := q.Input2.Size(); s > n {
			n = s
		}
	}
	return n/8 + 1
}

// InvalidateDataset drops every cached result for the named dataset.
// The server calls it when a dataset is re-registered or removed;
// version-keying already prevents stale hits, so this only reclaims
// the dead entries' bytes eagerly.
func (m *Manager) InvalidateDataset(name string) int {
	if m.rcache == nil {
		return 0
	}
	return m.rcache.invalidate(name)
}

// Get returns the job by id.
func (m *Manager) Get(id string) (*Job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, ErrUnknownJob
	}
	return j, nil
}

// Cancel cancels the job by id.
func (m *Manager) Cancel(id string) error {
	j, err := m.Get(id)
	if err != nil {
		return err
	}
	j.Cancel()
	return nil
}

// Jobs lists snapshots in submission order.
func (m *Manager) Jobs() []Snapshot {
	m.mu.Lock()
	ids := append([]string(nil), m.order...)
	jobs := make([]*Job, 0, len(ids))
	for _, id := range ids {
		jobs = append(jobs, m.jobs[id])
	}
	m.mu.Unlock()
	out := make([]Snapshot, len(jobs))
	for i, j := range jobs {
		out[i] = j.Snapshot()
	}
	return out
}

// runJob executes one job on the calling worker.
func (m *Manager) runJob(j *Job) {
	defer m.prune()
	if !j.start() {
		// Cancelled while queued.
		m.mCancelled.Inc()
		return
	}
	m.gRunning.Add(1)
	defer m.gRunning.Add(-1)

	res, err := m.execute(j)
	switch {
	case err == nil:
		m.mDone.Inc()
		m.hQuerySeconds.Observe(res.Elapsed.Seconds())
		m.hFirstResultSeconds.Observe(res.FirstResult.Seconds())
		if len(res.KeyblockLoads) > 0 {
			m.publishSkew(j, skew.Summarize(res.KeyblockLoads))
		}
		if m.rcache != nil && j.cacheKey != "" {
			// Insert before finish: finish fires the notify hook that
			// retires the collapse entry, so a concurrent identical submit
			// always finds either the live leader or the cached result —
			// never neither.
			m.rcache.put(j.cacheKey, requestDatasets(j.Req), res)
		}
		j.finish(Done, res, nil)
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		m.mCancelled.Inc()
		j.finish(Cancelled, nil, err)
	default:
		m.mFailed.Inc()
		j.finish(Failed, nil, err)
	}
}

// prune evicts the oldest terminal jobs — snapshots, results and partial
// logs — once more than RetainJobs of them have accumulated, keeping the
// table bounded in a long-running daemon. Queued and running jobs are
// never evicted.
func (m *Manager) prune() {
	if m.cfg.RetainJobs < 0 {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	terminal := 0
	for _, id := range m.order {
		if m.jobs[id].State().Terminal() {
			terminal++
		}
	}
	evict := terminal - m.cfg.RetainJobs
	if evict <= 0 {
		return
	}
	keep := m.order[:0]
	for _, id := range m.order {
		if evict > 0 && m.jobs[id].State().Terminal() {
			delete(m.jobs, id)
			m.mEvicted.Inc()
			evict--
			continue
		}
		keep = append(keep, id)
	}
	m.order = keep
}

// requestDatasets lists every dataset name a request reads, for
// result-cache invalidation (two entries for joins).
func requestDatasets(req Request) []string {
	if req.Dataset2 != "" {
		return []string{req.Dataset, req.Dataset2}
	}
	return []string{req.Dataset}
}

// publishSkew records the finished job's keyblock balance: on the job
// snapshot and on the last-job skew gauges (ratios in milli-units, the
// registry being integer-valued).
func (m *Manager) publishSkew(j *Job, s skew.Summary) {
	j.setSkew(&SkewStats{
		Keyblocks:   s.Keyblocks,
		Total:       s.Total,
		Starved:     s.Starved,
		Max:         s.Max,
		Min:         s.Min,
		MaxOverMean: s.MaxOverMean,
		CV:          s.CV,
		Gini:        s.Gini,
	})
	m.gSkewKeyblocks.Set(int64(s.Keyblocks))
	m.gSkewStarved.Set(int64(s.Starved))
	m.gSkewMax.Set(s.Max)
	m.gSkewMaxOverMean.Set(int64(s.MaxOverMean * 1000))
	m.gSkewCV.Set(int64(s.CV * 1000))
	m.gSkewGini.Set(int64(s.Gini * 1000))
}

// execute resolves the dataset, prepares (or reuses) the plan, and runs
// the query under the job's context.
func (m *Manager) execute(j *Job) (*sidr.Result, error) {
	if j.Req.Cluster {
		return m.executeCluster(j)
	}
	q, err := sidr.ParseQuery(j.Req.Query)
	if err != nil {
		return nil, err
	}
	engine, err := parseEngine(j.Req.Engine)
	if err != nil {
		return nil, err
	}
	if q.IsJoin() {
		return m.executeJoin(j, q, engine)
	}
	ds, release, err := m.cfg.Datasets.Acquire(j.Req.Dataset, q.Variable())
	if err != nil {
		return nil, err
	}
	defer release()

	opts := sidr.RunOptions{
		Engine:      engine,
		Reducers:    j.Req.Reducers,
		Workers:     j.Req.Workers,
		Weight:      m.tenantWeight(j.Req.Tenant),
		Exec:        m.exec,
		SplitPoints: j.Req.SplitPoints,
		MaxSkew:     j.Req.MaxSkew,
		OnPartial:   j.addPartial,
	}
	if iq, perr := query.Parse(j.Req.Query); perr == nil {
		opts.Index = m.lookupIndex(j.Req.Dataset, iq)
	}
	prep, err := m.prepare(ds.Shape(), q, &opts, j)
	if err != nil {
		return nil, err
	}
	m.mSidxPruned.Add(int64(prep.PrunedSplits()))
	return prep.Run(j.ctx, ds, opts)
}

// executeJoin runs a two-input join in process. The plan cache is
// skipped on purpose: a join plan embeds a load profile sampled from
// the data at plan time, so it is not a pure function of
// (shape, query, parameters) like single-input plans are.
func (m *Manager) executeJoin(j *Job, q *sidr.Query, engine sidr.Engine) (*sidr.Result, error) {
	dsA, releaseA, err := m.cfg.Datasets.Acquire(j.Req.Dataset, q.Variable())
	if err != nil {
		return nil, err
	}
	defer releaseA()
	dsB, releaseB, err := m.cfg.Datasets.Acquire(j.Req.Dataset2, q.Variable2())
	if err != nil {
		return nil, err
	}
	defer releaseB()
	return sidr.RunJoinContext(j.ctx, dsA, dsB, q, sidr.RunOptions{
		Engine:      engine,
		Reducers:    j.Req.Reducers,
		Workers:     j.Req.Workers,
		Weight:      m.tenantWeight(j.Req.Tenant),
		Exec:        m.exec,
		SplitPoints: j.Req.SplitPoints,
		MaxSkew:     j.Req.MaxSkew,
		OnPartial:   j.addPartial,
	})
}

// lookupIndex resolves the structural index for a value-predicated
// query and keeps the hit/miss counters. It returns nil — no pruning —
// when the operator has no prune predicate, the provider holds no
// index for the dataset, or the provider does not serve indexes at all.
func (m *Manager) lookupIndex(dataset string, q *query.Query) *sidx.VarIndex {
	op, err := q.Op()
	if err != nil {
		return nil
	}
	if _, ok := ops.PrunePredicate(op, q.Params()...); !ok {
		return nil // not value-predicated; the index has nothing to offer
	}
	prov, ok := m.cfg.Datasets.(IndexProvider)
	if !ok {
		m.mSidxMisses.Inc()
		return nil
	}
	vi := prov.Index(dataset, q.Variable)
	if vi == nil {
		m.mSidxMisses.Inc()
		return nil
	}
	m.mSidxHits.Inc()
	return vi
}

// executeCluster runs the job on the distributed runtime: the
// coordinator dispatches Map tasks to worker processes and runs Reduce
// tasks on the manager's shared executor, fetching each I_ℓ dependency
// set over the networked shuffle. The result is assembled exactly like
// the in-process engine's — same defaults, same global row-major sort —
// so the two paths are byte-identical for the same request.
func (m *Manager) executeCluster(j *Job) (*sidr.Result, error) {
	coord := m.cfg.Cluster
	if coord == nil {
		return nil, ErrClusterDisabled
	}
	specs, ok := m.cfg.Datasets.(DatasetSpecProvider)
	if !ok {
		return nil, fmt.Errorf("jobs: dataset provider cannot describe datasets to cluster workers")
	}
	q, err := query.Parse(j.Req.Query)
	if err != nil {
		return nil, err
	}
	if q.Join {
		return m.executeClusterJoin(j, coord, specs, q)
	}
	dspec, err := specs.DatasetSpec(j.Req.Dataset, q.Variable)
	if err != nil {
		return nil, err
	}
	// Normalise plan parameters with the same defaults sidr.Prepare
	// applies, so in-process and clustered runs of one request derive the
	// same plan.
	reducers := j.Req.Reducers
	if reducers <= 0 {
		reducers = 4
	}
	splitPoints := j.Req.SplitPoints
	if splitPoints <= 0 {
		splitPoints = q.Input.Size()/8 + 1
	}

	// Consult the structural index before dispatch: the kept-split list
	// rides in the JobPlan tuple so index-less workers re-derive the
	// coordinator's pruned plan exactly.
	var prunedList []int
	if vi := m.lookupIndex(j.Req.Dataset, q); vi != nil {
		if keep, total, pruned, perr := core.PruneSplits(q, splitPoints, vi); perr == nil && pruned {
			prunedList = keep
			m.mSidxPruned.Add(int64(total - len(keep)))
		}
	}

	start := time.Now()
	var (
		partMu sync.Mutex
		first  time.Duration
	)
	res := &sidr.Result{}
	// Attach block locality when the dataset is mirrored in the
	// namespace; joins skip locality (two files, interleaved splits).
	var ns *hdfs.Namespace
	if m.cfg.Namespace != nil && m.cfg.Namespace.Has(j.Req.Dataset) {
		ns = m.cfg.Namespace
	}
	cres, err := coord.Run(j.ctx, cluster.JobSpec{
		ID:        j.ID,
		Plan:      cluster.JobPlan{Query: q.String(), Engine: j.Req.Engine, Reducers: reducers, SplitPoints: splitPoints, MaxSkew: j.Req.MaxSkew, Pruned: prunedList},
		Dataset:   dspec,
		Namespace: ns,
		File:      j.Req.Dataset,
		Exec:      m.exec,
		Workers:   j.Req.Workers,
		Weight:    m.tenantWeight(j.Req.Tenant),
		OnPartial: func(rr cluster.ReduceResult) {
			pr := toPartialResult(rr)
			partMu.Lock()
			if first == 0 {
				first = time.Since(start)
			}
			res.Partials = append(res.Partials, pr)
			partMu.Unlock()
			j.addPartial(pr)
		},
	})
	if err != nil {
		return nil, err
	}
	res.Elapsed = time.Since(start)
	res.FirstResult = first
	res.Connections = cres.Counters.Connections
	res.TasksDispatched = cres.Counters.MapsDispatched + int64(len(cres.Outputs))
	if cres.Plan != nil && cres.Plan.Graph != nil {
		res.KeyblockLoads = append([]int64(nil), cres.Plan.Graph.ExpectedCount...)
	}

	type row struct {
		key  coords.Coord
		vals []float64
	}
	var rows []row
	for _, out := range cres.Outputs {
		for i, k := range out.Keys {
			rows = append(rows, row{key: k, vals: out.Values[i]})
		}
	}
	sort.Slice(rows, func(i, k int) bool { return rows[i].key.Less(rows[k].key) })
	for _, r := range rows {
		res.Keys = append(res.Keys, append([]int64(nil), r.key...))
		res.Values = append(res.Values, r.vals)
	}
	return res, nil
}

// executeClusterJoin runs a two-input join on the distributed runtime.
// The manager samples both sides itself — through the same DatasetSpecs
// the workers will resolve — derives the skew-adapted keyblock layout,
// and ships it verbatim in the JobPlan's Retile: workers rebuild the
// identical routing without ever re-sampling, so the clustered result
// is byte-identical to the in-process engine's for the same request.
func (m *Manager) executeClusterJoin(j *Job, coord *cluster.Coordinator, specs DatasetSpecProvider, q *query.Query) (*sidr.Result, error) {
	engine, err := parseEngine(j.Req.Engine)
	if err != nil {
		return nil, err
	}
	dspecA, err := specs.DatasetSpec(j.Req.Dataset, q.Variable)
	if err != nil {
		return nil, err
	}
	dspecB, err := specs.DatasetSpec(j.Req.Dataset2, q.Variable2)
	if err != nil {
		return nil, err
	}
	// Same defaults as sidr.RunJoinContext, so both engines derive
	// identical split sets from one request.
	reducers := j.Req.Reducers
	if reducers <= 0 {
		reducers = 4
	}
	splitPoints := j.Req.SplitPoints
	if splitPoints <= 0 {
		splitPoints = defaultSplitPoints(q)
	}

	readerA, closerA, err := cluster.OpenDataset(dspecA)
	if err != nil {
		return nil, err
	}
	readerB, closerB, err := cluster.OpenDataset(dspecB)
	if err != nil {
		closeQuiet(closerA)
		return nil, err
	}
	plan, err := core.NewPlan(q, engine, core.Options{
		Reducers:     reducers,
		SplitPoints:  splitPoints,
		MaxSkew:      j.Req.MaxSkew,
		JoinSamplerA: readerA,
		JoinSamplerB: readerB,
	})
	closeQuiet(closerA)
	closeQuiet(closerB)
	if err != nil {
		return nil, err
	}
	rt := plan.Join.Retiling()

	start := time.Now()
	var (
		partMu sync.Mutex
		first  time.Duration
	)
	res := &sidr.Result{}
	cres, err := coord.Run(j.ctx, cluster.JobSpec{
		ID: j.ID,
		Plan: cluster.JobPlan{
			Query:       q.String(),
			Engine:      j.Req.Engine,
			Reducers:    reducers,
			SplitPoints: splitPoints,
			MaxSkew:     j.Req.MaxSkew,
			Retile:      &rt,
		},
		Dataset:  dspecA,
		Dataset2: &dspecB,
		Exec:     m.exec,
		Workers:  j.Req.Workers,
		Weight:   m.tenantWeight(j.Req.Tenant),
		OnPartial: func(rr cluster.ReduceResult) {
			pr := toPartialResult(rr)
			partMu.Lock()
			if first == 0 {
				first = time.Since(start)
			}
			res.Partials = append(res.Partials, pr)
			partMu.Unlock()
			j.addPartial(pr)
		},
	})
	if err != nil {
		return nil, err
	}
	res.Elapsed = time.Since(start)
	res.FirstResult = first
	res.Connections = cres.Counters.Connections
	res.TasksDispatched = cres.Counters.MapsDispatched + int64(len(cres.Outputs))
	res.KeyblockLoads = append([]int64(nil), plan.Join.EstLoads...)

	// Reduce outputs are raw per-keyblock rows (share units emit partial
	// moment rows); fold them exactly like the in-process engine does.
	var rows []join.Row
	for _, out := range cres.Outputs {
		for i, k := range out.Keys {
			rows = append(rows, join.Row{KB: out.Keyblock, Key: k, Values: out.Values[i]})
		}
	}
	assembled, err := join.Assemble(plan.Join, rows)
	if err != nil {
		return nil, err
	}
	for _, r := range assembled {
		res.Keys = append(res.Keys, append([]int64(nil), r.Key...))
		res.Values = append(res.Values, r.Values)
	}
	return res, nil
}

// closeQuiet closes a dataset handle that may legitimately be nil
// (synthetic generator specs have nothing to close).
func closeQuiet(c io.Closer) {
	if c != nil {
		c.Close()
	}
}

// toPartialResult converts one finalized keyblock into the facade's
// partial-result form.
func toPartialResult(rr cluster.ReduceResult) sidr.PartialResult {
	pr := sidr.PartialResult{Keyblock: rr.Keyblock, At: time.Now()}
	for i, k := range rr.Keys {
		pr.Keys = append(pr.Keys, append([]int64(nil), k...))
		pr.Values = append(pr.Values, rr.Values[i])
	}
	return pr
}

// prepare returns a cached plan for the request or derives and caches a
// new one. The canonical query string keys the cache so textual variants
// of the same query share an entry.
func (m *Manager) prepare(shape []int64, q *sidr.Query, opts *sidr.RunOptions, j *Job) (*sidr.Prepared, error) {
	if m.cache == nil {
		return sidr.Prepare(shape, q, *opts)
	}
	key := planKey(shape, q.String(), opts.Engine, *opts)
	if prep, ok := m.cache.get(key); ok {
		m.mPlanHits.Inc()
		j.setPlanHit(true)
		return prep, nil
	}
	prep, err := sidr.Prepare(shape, q, *opts)
	if err != nil {
		return nil, err
	}
	m.mPlanMisses.Inc()
	m.mPlanEvictions.Add(int64(m.cache.put(key, prep)))
	m.gPlanSize.Set(int64(m.cache.len()))
	return prep, nil
}

// Shutdown stops admission, cancels still-queued jobs, and waits for
// in-flight jobs to drain until ctx expires, at which point running jobs
// are cancelled and the wait resumes until they unwind.
func (m *Manager) Shutdown(ctx context.Context) error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	close(m.queue)
	// Partition under the lock, cancel after: Cancel fires the
	// terminal-notify hook, which re-enters m.mu to release the tenant
	// slot and collapse entry.
	var queued, running []*Job
	for _, j := range m.jobs {
		if j.State() == Queued {
			queued = append(queued, j)
		} else {
			running = append(running, j)
		}
	}
	m.mu.Unlock()
	for _, j := range queued {
		j.Cancel()
	}

	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		m.exec.Close()
		return nil
	case <-ctx.Done():
		for _, j := range running {
			j.Cancel()
		}
		<-done
		m.exec.Close()
		return ctx.Err()
	}
}

// ExecStats reports the shared task executor's instantaneous state:
// pool size, queued + runnable + running task counts, peak concurrency
// and total dispatches. The server exposes these as gauges so operators
// can tell executor saturation (tasks waiting for a pool slot) apart
// from admission saturation (jobs rejected at the queue).
func (m *Manager) ExecStats() exec.Stats {
	return m.exec.Stats()
}

// WaitIdle blocks until no job is queued or running, or until the
// timeout elapses; used by tests to detect quiescence.
func (m *Manager) WaitIdle(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if m.gQueued.Value() == 0 && m.gRunning.Value() == 0 {
			return true
		}
		time.Sleep(2 * time.Millisecond)
	}
	return false
}
