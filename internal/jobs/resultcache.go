package jobs

import (
	"container/list"
	"encoding/json"
	"sync"

	"sidr"
	"sidr/internal/metrics"
	"sidr/internal/wire"
)

// resultCache is a byte-budgeted LRU of completed query results. SIDR's
// premise makes this sound: a structural query's result is a pure
// function of {dataset contents, query, engine} — §3's precomputability
// taken to its endpoint — so the daemon may serve a finished result
// again instead of re-running the Map/shuffle/Reduce pipeline, as long
// as the key pins the dataset *contents*, not just its name. The fast
// key therefore embeds the dataset version (registration generation +
// shape + structural-index fingerprint, see jobs.VersionProvider):
// re-registering a dataset changes the version, so a stale hit is
// impossible by construction, and InvalidateDataset additionally drops
// the dead entries eagerly to free the byte budget.
//
// Entries store the job's *sidr.Result pointer. Results are immutable
// once a job finishes, so a hit serves the exact object a previous run
// produced and the wire encoding is byte-identical to the original
// response — including the partial sequence a cached job's stream
// replays.
type resultCache struct {
	mu     sync.Mutex
	budget int64
	bytes  int64
	ll     *list.List // front = most recent
	items  map[string]*list.Element

	hits, misses, evictions *metrics.Counter
	gBytes, gEntries        *metrics.Gauge
}

type resultEntry struct {
	key string
	// datasets lists every input's registry name — both sides of a join —
	// so InvalidateDataset drops an entry when ANY of its inputs dies,
	// not just the primary.
	datasets []string
	res      *sidr.Result
	size     int64
}

// newResultCache builds a cache with the given byte budget and registers
// its instruments.
func newResultCache(budget int64, reg *metrics.Registry) *resultCache {
	return &resultCache{
		budget:    budget,
		ll:        list.New(),
		items:     make(map[string]*list.Element),
		hits:      reg.Counter("sidrd_resultcache_hits_total"),
		misses:    reg.Counter("sidrd_resultcache_misses_total"),
		evictions: reg.Counter("sidrd_resultcache_evictions_total"),
		gBytes:    reg.Gauge("sidrd_resultcache_bytes"),
		gEntries:  reg.Gauge("sidrd_resultcache_entries"),
	}
}

// resultSize estimates an entry's wire footprint: the encoded final
// result plus the encoded partial sequence a cached stream replays.
func resultSize(res *sidr.Result) int64 {
	b, err := json.Marshal(wire.FromResult(res))
	if err != nil {
		return 0
	}
	n := int64(len(b))
	for i := range res.Partials {
		p := wire.FromPartial(res.Partials[i])
		if pb, err := json.Marshal(&p); err == nil {
			n += int64(len(pb))
		}
	}
	return n
}

// get returns the cached result and bumps its recency, counting the hit
// or miss.
func (c *resultCache) get(key string) (*sidr.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses.Inc()
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.hits.Inc()
	return el.Value.(*resultEntry).res, true
}

// put inserts a completed result under the key, evicting least recently
// used entries until the byte budget holds. A result larger than the
// whole budget is not cached. datasets lists every input dataset name
// the result was computed from (two for joins).
func (c *resultCache) put(key string, datasets []string, res *sidr.Result) {
	size := resultSize(res)
	if size <= 0 || size > c.budget {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		// Same key, same version, pure function: the result is equivalent;
		// keep the incumbent and just bump recency.
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&resultEntry{key: key, datasets: datasets, res: res, size: size})
	c.bytes += size
	for c.bytes > c.budget && c.ll.Len() > 1 {
		c.evictLocked(c.ll.Back())
	}
	c.publishLocked()
}

// invalidate drops every entry that read the named dataset (any
// version, either join side) and returns how many were dropped.
// Version-keying already makes stale hits impossible; this reclaims
// their bytes the moment a re-registration makes them unreachable.
func (c *resultCache) invalidate(dataset string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for el := c.ll.Front(); el != nil; {
		next := el.Next()
		for _, d := range el.Value.(*resultEntry).datasets {
			if d == dataset {
				c.evictLocked(el)
				n++
				break
			}
		}
		el = next
	}
	c.publishLocked()
	return n
}

// evictLocked removes one entry and counts the eviction. Caller holds mu.
func (c *resultCache) evictLocked(el *list.Element) {
	e := el.Value.(*resultEntry)
	c.ll.Remove(el)
	delete(c.items, e.key)
	c.bytes -= e.size
	c.evictions.Inc()
}

// publishLocked refreshes the size gauges. Caller holds mu.
func (c *resultCache) publishLocked() {
	c.gBytes.Set(c.bytes)
	c.gEntries.Set(int64(c.ll.Len()))
}
