package experiments

import (
	"strings"
	"testing"

	"sidr/internal/core"
	"sidr/internal/ncfile"
	"sidr/internal/ops"
	"sidr/internal/partition"
)

func TestQueriesParse(t *testing.T) {
	q1, q2 := Query1(), Query2()
	if q1.Operator != "median" || q2.Operator != "filter_gt" {
		t.Fatalf("queries changed: %v / %v", q1, q2)
	}
	op1, err := q1.Op()
	if err != nil || op1.Kind() != ops.Holistic {
		t.Fatalf("Query 1 operator: %v %v", op1, err)
	}
	space, err := q1.IntermediateSpace()
	if err != nil {
		t.Fatal(err)
	}
	if space.Size() != 3_600_000 {
		t.Fatalf("Query 1 K' size = %d", space.Size())
	}
}

func TestPaperPlanGeometry(t *testing.T) {
	p, err := PaperPlan(Query1(), core.EngineSIDR, 22)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Splits) != PaperSplits {
		t.Fatalf("%d splits, want %d", len(p.Splits), PaperSplits)
	}
	var total int64
	for _, s := range p.Splits {
		total += s.Slab.Size()
	}
	if total != p.Query.Input.Size() {
		t.Fatalf("splits cover %d points", total)
	}
	if p.Graph.TotalPoints() != p.Query.Input.Size() {
		t.Fatalf("graph covers %d points", p.Graph.TotalPoints())
	}
}

func TestPaperWorkloadByOperatorClass(t *testing.T) {
	// Holistic: all source samples ship.
	p1, err := PaperPlan(Query1(), core.EngineSIDR, 22)
	if err != nil {
		t.Fatal(err)
	}
	w1, err := PaperWorkload(p1, 0)
	if err != nil {
		t.Fatal(err)
	}
	var in1 int64
	for _, r := range w1.Reduces {
		in1 += r.InBytes
	}
	if in1 != p1.Query.Input.Size()*8 {
		t.Fatalf("holistic shuffle bytes = %d, want full dataset %d", in1, p1.Query.Input.Size()*8)
	}
	// Filter: survivors only (plus per-key overhead).
	p2, err := PaperPlan(Query2(), core.EngineSIDR, 22)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := PaperWorkload(p2, Query2SurvivorFrac)
	if err != nil {
		t.Fatal(err)
	}
	var in2 int64
	for _, r := range w2.Reduces {
		in2 += r.InBytes
	}
	if in2 >= in1/100 {
		t.Fatalf("filter shuffle bytes %d not ≪ holistic %d", in2, in1)
	}
}

func TestFigure9Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale simulation")
	}
	rs, err := Figure9(TestbedConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 3 {
		t.Fatalf("%d curves", len(rs))
	}
	h, sh, ss := rs[0], rs[1], rs[2]
	// First results: SIDR ≪ SciHadoop ≪ Hadoop (paper: 625 / 1132 /
	// 2797 s).
	if !(ss.FirstResult < sh.FirstResult/2) {
		t.Fatalf("SIDR first %v not ≪ SciHadoop %v", ss.FirstResult, sh.FirstResult)
	}
	if !(sh.FirstResult < h.FirstResult/1.5) {
		t.Fatalf("SciHadoop first %v not ≪ Hadoop %v", sh.FirstResult, h.FirstResult)
	}
	// Totals: Hadoop ~2.3× SciHadoop; SIDR within 10% of SciHadoop
	// (paper: 2,890 / 1,250 / 1,264 s).
	if ratio := h.Makespan / sh.Makespan; ratio < 1.8 || ratio > 3.0 {
		t.Fatalf("Hadoop/SciHadoop total ratio = %v", ratio)
	}
	if ratio := ss.Makespan / sh.Makespan; ratio < 0.85 || ratio > 1.10 {
		t.Fatalf("SIDR/SciHadoop total ratio = %v", ratio)
	}
	// Abstract: SIDR executes up to 2.5× faster than Hadoop.
	if speedup := h.Makespan / ss.Makespan; speedup < 2.0 {
		t.Fatalf("SIDR speedup over Hadoop = %v", speedup)
	}
}

func TestFigure10Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale simulation")
	}
	rs, err := Figure10(TestbedConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 5 {
		t.Fatalf("%d curves", len(rs))
	}
	sh := rs[0]
	// SIDR's first result and makespan fall monotonically with reducer
	// count (22 -> 528).
	for i := 2; i < 5; i++ {
		if !(rs[i].FirstResult < rs[i-1].FirstResult) {
			t.Fatalf("first result not improving: %v then %v", rs[i-1].Format(), rs[i].Format())
		}
		if !(rs[i].Makespan < rs[i-1].Makespan+1) {
			t.Fatalf("makespan not improving: %v then %v", rs[i-1].Format(), rs[i].Format())
		}
	}
	// At 528 reducers SIDR is substantially faster than SciHadoop
	// (paper: 29%).
	gain := (sh.Makespan - rs[4].Makespan) / sh.Makespan
	if gain < 0.15 {
		t.Fatalf("528-reducer gain over SciHadoop = %.0f%%", gain*100)
	}
	// Abstract: "produces initial results with only 6% of the query
	// completed" — at the highest reducer count, first results must
	// arrive with under 10% of Map work done.
	if rs[4].MapFracAtFirst > 0.10 {
		t.Fatalf("first result required %.0f%% of maps", rs[4].MapFracAtFirst*100)
	}
}

func TestFigure11Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale simulation")
	}
	rs, err := Figure11(TestbedConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	sh, ss22 := rs[0], rs[1]
	// Reduce work is a tiny fraction of the query: SIDR's total gain is
	// small (§4.1: "the reduction in total query time is much smaller
	// than it was for Query 1") even though first results arrive early.
	if gain := (sh.Makespan - ss22.Makespan) / sh.Makespan; gain > 0.10 {
		t.Fatalf("filter-query gain %v should be small", gain)
	}
	if !(ss22.FirstResult < sh.FirstResult/2) {
		t.Fatalf("SIDR filter first result %v not early vs %v", ss22.FirstResult, sh.FirstResult)
	}
}

func TestFigure12Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale simulation")
	}
	rows, err := Figure12(TestbedConfig(1), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Reducers != 22 || rows[1].Reducers != 88 {
		t.Fatalf("rows = %+v", rows)
	}
	// More reducers -> smaller dependency sets -> lower variance (§4.2).
	if !(rows[1].MeanStdDev < rows[0].MeanStdDev) {
		t.Fatalf("variance did not fall: %v vs %v", rows[0].MeanStdDev, rows[1].MeanStdDev)
	}
	if _, err := Figure12(TestbedConfig(1), 1); err == nil {
		t.Fatal("single-run variance accepted")
	}
}

func TestFigure13Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale simulation")
	}
	rs, err := Figure13(TestbedConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	stock, sidr := rs[0], rs[1]
	gain := (stock.Makespan - sidr.Makespan) / stock.Makespan
	// Paper: SIDR completes 42% faster; require at least 30%.
	if gain < 0.30 {
		t.Fatalf("skew-case gain = %.0f%%", gain*100)
	}
}

func TestSkewLoads(t *testing.T) {
	q := Query1()
	enc := partition.CornerInKEncoding{InputSpace: q.Input.Shape, Extraction: q.Extraction}
	stock, err := PaperPlanEncoded(q, core.EngineSciHadoop, 22, enc)
	if err != nil {
		t.Fatal(err)
	}
	st := SkewLoads(stock)
	// §4.3: every encoded key is even, so the 11 odd keyblocks starve
	// and even ones carry double.
	if st.Starved != 11 {
		t.Fatalf("starved = %d, want 11", st.Starved)
	}
	if st.MaxOverMean < 1.9 {
		t.Fatalf("overload factor = %v, want ~2", st.MaxOverMean)
	}
	if st.Gini < 0.4 {
		t.Fatalf("stock gini = %v, want severe imbalance", st.Gini)
	}
	sidr, err := PaperPlan(q, core.EngineSIDR, 22)
	if err != nil {
		t.Fatal(err)
	}
	st = SkewLoads(sidr)
	// partition+ balances to within one tile instance: with the default
	// skew bound (65,536 keys) over 163,636 keys per reducer that is at
	// most ~1.2× the mean, against 2× for the pathological modulo case.
	if st.Starved != 0 || st.MaxOverMean > 1.25 {
		t.Fatalf("partition+ skewed: %+v", st)
	}
	if st.Gini > 0.15 {
		t.Fatalf("partition+ gini = %v", st.Gini)
	}
}

func TestTable2Shape(t *testing.T) {
	cfg := Table2Config{
		Dir:           t.TempDir(),
		PointsPerTask: 1 << 12,
		ReduceCounts:  []int{4, 8, 16},
		Runs:          2,
	}
	rows, err := Table2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("%d rows", len(rows))
	}
	// Sentinel file size scales linearly with total reduces (modulo the
	// ~50-byte header); the dense file stays at the task's own data.
	for i := 1; i < 3; i++ {
		ratio := float64(rows[i].Bytes) / float64(rows[i-1].Bytes)
		if ratio < 1.99 || ratio > 2.01 {
			t.Fatalf("sentinel sizes not doubling: %d %d %d", rows[0].Bytes, rows[1].Bytes, rows[2].Bytes)
		}
	}
	dense := rows[3]
	if dense.Strategy != ncfile.Dense {
		t.Fatalf("row 3 = %+v", dense)
	}
	if dense.Bytes >= rows[0].Bytes/2 {
		t.Fatalf("dense output %d not ≪ sentinel %d", dense.Bytes, rows[0].Bytes)
	}
	pairs := rows[4]
	// Pairs: constant overhead of 2 (1-D coordinate + value per point).
	want := int64(4+4+8) + cfg.PointsPerTask*16
	if pairs.Bytes != want {
		t.Fatalf("pair bytes = %d, want %d", pairs.Bytes, want)
	}
	if _, err := Table2(Table2Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
}

func TestTable3Values(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale planning")
	}
	rows, err := Table3()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("%d rows", len(rows))
	}
	// Hadoop column must match the paper exactly for the shared split
	// count: maps × reduces.
	wantHadoop := map[int]int64{22: 61182, 66: 183546, 132: 367092, 264: 734184, 528: 1468368}
	for _, r := range rows {
		if want, ok := wantHadoop[r.Reduces]; ok && r.HadoopConns != want {
			t.Fatalf("hadoop conns at %d reduces = %d, want %d", r.Reduces, r.HadoopConns, want)
		}
		// SIDR stays within a small multiple of the split count at every
		// scale (paper: 2,820 -> 5,106 while Hadoop grows 50×).
		if r.SIDRConns < int64(r.Maps) || r.SIDRConns > 2*int64(r.Maps) {
			t.Fatalf("SIDR conns at %d reduces = %d", r.Reduces, r.SIDRConns)
		}
	}
	if !(rows[5].SIDRConns < rows[5].HadoopConns/100) {
		t.Fatalf("SIDR %d not ≪ Hadoop %d at 1024 reduces", rows[5].SIDRConns, rows[5].HadoopConns)
	}
}

func TestPartitionMicro(t *testing.T) {
	res, err := PartitionMicro(100_000, 2, 22)
	if err != nil {
		t.Fatal(err)
	}
	if res.DefaultSecs <= 0 || res.PlusSecs <= 0 {
		t.Fatalf("times = %+v", res)
	}
	// §4.5's conclusion: the partitioners are within the same order of
	// magnitude (the paper saw 200 vs 223 ms).
	ratio := res.PlusSecs / res.DefaultSecs
	if ratio > 5 || ratio < 0.2 {
		t.Fatalf("partition+ / default ratio = %v", ratio)
	}
	if !strings.Contains(res.Format(), "partition+") {
		t.Fatalf("format = %q", res.Format())
	}
	if _, err := PartitionMicro(0, 1, 1); err == nil {
		t.Fatal("bad config accepted")
	}
}

func TestCurveResultFormat(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale simulation")
	}
	rs, err := Figure9(TestbedConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, cr := range rs {
		s := cr.Format()
		if !strings.Contains(s, "first=") || !strings.Contains(s, "conns=") {
			t.Fatalf("format = %q", s)
		}
	}
}
