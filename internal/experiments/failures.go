package experiments

import (
	"fmt"

	"sidr/internal/core"
	"sidr/internal/simcluster"
)

// FailureStudyRow compares the two §6 recovery strategies at one failure
// probability: stock persist-everything (every Map task pays a
// persistence overhead, recovery refetches) vs SIDR's proposed
// no-persist (full-speed Map tasks, recovery re-executes the failed
// Reduce task's I_ℓ Map subset).
type FailureStudyRow struct {
	FailureProb       float64
	PersistMakespan   float64
	PersistFailures   int
	RecomputeMakespan float64
	RecomputeFailures int
}

// Format renders the row as one harness output line.
func (r FailureStudyRow) Format() string {
	winner := "persist"
	if r.RecomputeMakespan < r.PersistMakespan {
		winner = "no-persist"
	}
	return fmt.Sprintf("p=%4.2f  persist=%7.1fs (%d failures)  no-persist=%7.1fs (%d failures)  winner=%s",
		r.FailureProb, r.PersistMakespan, r.PersistFailures,
		r.RecomputeMakespan, r.RecomputeFailures, winner)
}

// PersistOverheadDefault is the fractional Map-task slowdown charged for
// persisting intermediate data to local disk (a spill write alongside
// every Map task's output).
const PersistOverheadDefault = 0.08

// FailureStudy runs the §6 hypothesis at paper scale: Query 1 under SIDR
// with the given Reduce count, sweeping Reduce-failure probabilities.
// The paper's hypothesis — "the performance savings in the non-failure
// case will offset said re-execution cost" — predicts no-persist wins at
// low failure rates and loses once re-execution dominates; the crossover
// moves to higher failure rates as the Reduce count grows (smaller I_ℓ
// sets make re-execution cheaper).
func FailureStudy(cfg simcluster.Config, reducers int, probs []float64) ([]FailureStudyRow, error) {
	q := Query1()
	p, err := PaperPlan(q, core.EngineSIDR, reducers)
	if err != nil {
		return nil, err
	}
	w, err := PaperWorkload(p, 0)
	if err != nil {
		return nil, err
	}
	var rows []FailureStudyRow
	for _, prob := range probs {
		row := FailureStudyRow{FailureProb: prob}
		for _, recompute := range []bool{false, true} {
			res, err := simulateWithFailure(p, cfg, w, prob, recompute)
			if err != nil {
				return nil, err
			}
			if recompute {
				row.RecomputeMakespan = res.Stats.Makespan
				row.RecomputeFailures = res.Stats.FailedReduces
			} else {
				row.PersistMakespan = res.Stats.Makespan
				row.PersistFailures = res.Stats.FailedReduces
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// simulateWithFailure is Plan.Simulate with a failure model attached.
func simulateWithFailure(p *core.Plan, cfg simcluster.Config, w core.SimWorkload, prob float64, recompute bool) (*simcluster.Result, error) {
	res, err := p.SimulateWith(cfg, w, &simcluster.FailureModel{
		Prob:            prob,
		Recompute:       recompute,
		PersistOverhead: PersistOverheadDefault,
	})
	return res, err
}
