package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"sidr/internal/coords"
	"sidr/internal/core"
	"sidr/internal/ncfile"
	"sidr/internal/partition"
)

// Table2Row is one row of the Reduce-output write-scaling experiment
// (§4.4): the time and file size for a single representative Reduce task
// to write its output under each strategy, as the total output space
// scales with the Reduce task count.
type Table2Row struct {
	Strategy     ncfile.OutputStrategy
	TotalReduces int
	// Seconds is the mean write time over Runs runs; StdDev its standard
	// deviation.
	Seconds float64
	StdDev  float64
	// Bytes is the written file's size.
	Bytes int64
}

// Format renders the row in Table 2's layout.
func (r Table2Row) Format() string {
	return fmt.Sprintf("%-8s reduces=%3d time=%8.4fs (σ %.4f) size=%8.2f MB",
		r.Strategy, r.TotalReduces, r.Seconds, r.StdDev, float64(r.Bytes)/(1<<20))
}

// Table2Config parametrises the write-scaling micro-benchmark.
type Table2Config struct {
	// Dir is the directory files are written into.
	Dir string
	// PointsPerTask is the useful output of one Reduce task (fixed as
	// the experiment scales, per §4.4).
	PointsPerTask int64
	// ReduceCounts are the total-output scales to test (paper: 20, 40,
	// 80).
	ReduceCounts []int
	// Runs is the per-cell repetition count (paper: 10).
	Runs int
}

// DefaultTable2Config returns a laptop-scale version of the paper's
// experiment: the per-task output is fixed and the total output space
// doubles with the task count, so the sentinel strategy's cost doubles
// per row while SIDR's dense write stays constant.
func DefaultTable2Config(dir string) Table2Config {
	return Table2Config{
		Dir:           dir,
		PointsPerTask: 1 << 16, // 512 KiB of useful output per task
		ReduceCounts:  []int{20, 40, 80},
		Runs:          5,
	}
}

// Table2 runs the write-scaling experiment with real file IO.
//
// For each total-Reduce count R it writes one representative task's
// output: the sentinel strategy creates a file spanning the whole
// R-task output space (R × PointsPerTask values) filled with sentinels
// and scatters the task's values into every R-th slot — modulo
// partitioning assigns it keys strided across the space; the SIDR row
// writes the task's contiguous keyblock as a dense file with an origin.
func Table2(cfg Table2Config) ([]Table2Row, error) {
	if cfg.Runs < 1 || cfg.PointsPerTask < 1 || len(cfg.ReduceCounts) == 0 {
		return nil, fmt.Errorf("experiments: bad Table 2 config %+v", cfg)
	}
	rng := rand.New(rand.NewSource(2))
	values := make([]float64, cfg.PointsPerTask)
	for i := range values {
		values[i] = rng.NormFloat64()
	}

	var rows []Table2Row
	for _, r := range cfg.ReduceCounts {
		total := coords.NewShape(int64(r) * cfg.PointsPerTask)
		// Modulo partitioning hands this task every R-th key.
		keys := make([]coords.Coord, cfg.PointsPerTask)
		for i := range keys {
			keys[i] = coords.NewCoord(int64(i) * int64(r))
		}
		secs, sd, bytes, err := timed(cfg.Runs, func(run int) (int64, error) {
			path := filepath.Join(cfg.Dir, fmt.Sprintf("sentinel-%d-%d.ncf", r, run))
			defer os.Remove(path)
			return ncfile.WriteSentinel(path, "out", total, ncfile.DefaultSentinel, keys, values)
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table2Row{Strategy: ncfile.Sentinel, TotalReduces: r, Seconds: secs, StdDev: sd, Bytes: bytes})
	}

	// SIDR: one dense contiguous keyblock, independent of the total.
	kb := coords.MustSlab(coords.NewCoord(0), coords.NewShape(cfg.PointsPerTask))
	secs, sd, bytes, err := timed(cfg.Runs, func(run int) (int64, error) {
		path := filepath.Join(cfg.Dir, fmt.Sprintf("dense-%d.ncf", run))
		defer os.Remove(path)
		return ncfile.WriteDense(path, "out", kb, values)
	})
	if err != nil {
		return nil, err
	}
	rows = append(rows, Table2Row{Strategy: ncfile.Dense, TotalReduces: 0, Seconds: secs, StdDev: sd, Bytes: bytes})

	// Coordinate/value pairs: the paper's alternative sparse layout with
	// constant per-value overhead.
	keys1 := make([]coords.Coord, cfg.PointsPerTask)
	for i := range keys1 {
		keys1[i] = coords.NewCoord(int64(i) * 20)
	}
	secs, sd, bytes, err = timed(cfg.Runs, func(run int) (int64, error) {
		path := filepath.Join(cfg.Dir, fmt.Sprintf("pairs-%d.ncfp", run))
		defer os.Remove(path)
		return ncfile.WritePairs(path, 1, keys1, values)
	})
	if err != nil {
		return nil, err
	}
	rows = append(rows, Table2Row{Strategy: ncfile.Pairs, TotalReduces: 0, Seconds: secs, StdDev: sd, Bytes: bytes})
	return rows, nil
}

// timed runs fn `runs` times returning mean seconds, standard deviation,
// and the byte count of the final run.
func timed(runs int, fn func(run int) (int64, error)) (mean, stddev float64, bytes int64, err error) {
	var sum, sumSq float64
	for i := 0; i < runs; i++ {
		start := time.Now()
		bytes, err = fn(i)
		if err != nil {
			return 0, 0, 0, err
		}
		s := time.Since(start).Seconds()
		sum += s
		sumSq += s * s
	}
	mean = sum / float64(runs)
	v := sumSq/float64(runs) - mean*mean
	if v < 0 {
		v = 0
	}
	return mean, sqrt(v), bytes, nil
}

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Sqrt(x)
}

// Table3Row is one row of the shuffle-connection scaling table (§4.6).
type Table3Row struct {
	Maps        int
	Reduces     int
	HadoopConns int64
	SIDRConns   int64
}

// Format renders the row in Table 3's layout.
func (r Table3Row) Format() string {
	return fmt.Sprintf("%d/%-5d hadoop=%-10d sidr=%d", r.Maps, r.Reduces, r.HadoopConns, r.SIDRConns)
}

// Table3 regenerates Table 3: total Map↔Reduce connections for Query 1
// as the Reduce count scales. Hadoop's count is Maps×Reduces; SIDR's is
// Σ|I_ℓ| computed from the real dependency graphs.
func Table3() ([]Table3Row, error) {
	q := Query1()
	var rows []Table3Row
	for _, r := range []int{22, 66, 132, 264, 528, 1024} {
		p, err := PaperPlan(q, core.EngineSIDR, r)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table3Row{
			Maps:        len(p.Splits),
			Reduces:     r,
			HadoopConns: p.Graph.HadoopConnections(),
			SIDRConns:   p.Graph.SIDRConnections(),
		})
	}
	return rows, nil
}

// PartitionMicroResult reports the §4.5 partitioning micro-benchmark:
// the time to partition PairCount intermediate key/value pairs with the
// default partitioner and with partition+.
type PartitionMicroResult struct {
	PairCount    int
	Runs         int
	DefaultSecs  float64
	DefaultStdev float64
	PlusSecs     float64
	PlusStdev    float64
}

// Format renders the result like §4.5's prose (times in milliseconds).
func (r PartitionMicroResult) Format() string {
	return fmt.Sprintf("partition %d pairs over %d runs: default=%.1fms (σ %.1f)  partition+=%.1fms (σ %.1f)",
		r.PairCount, r.Runs, r.DefaultSecs*1e3, r.DefaultStdev*1e3, r.PlusSecs*1e3, r.PlusStdev*1e3)
}

// PartitionMicroPairs is the paper's pair count (6.48M).
const PartitionMicroPairs = 6_480_000

// PartitionMicro loads pairCount intermediate pairs into memory and
// measures only the partitioning time of each function, mirroring §4.5's
// methodology.
func PartitionMicro(pairCount, runs, reducers int) (PartitionMicroResult, error) {
	if pairCount < 1 || runs < 1 || reducers < 1 {
		return PartitionMicroResult{}, fmt.Errorf("experiments: bad partition micro config")
	}
	// A 2-D intermediate keyspace big enough to hold pairCount distinct
	// keys.
	rows := int64(pairCount+999) / 1000
	space := coords.Slab{Corner: coords.NewCoord(0, 0), Shape: coords.NewShape(rows, 1000)}
	keys := make([]coords.Coord, pairCount)
	for i := range keys {
		kp, err := space.Delinearize(int64(i))
		if err != nil {
			return PartitionMicroResult{}, err
		}
		keys[i] = kp
	}

	mod, err := partition.NewModulo(reducers, partition.TileIndexEncoding{Space: space})
	if err != nil {
		return PartitionMicroResult{}, err
	}
	pp, err := partition.NewPartitionPlus(space, reducers, 0)
	if err != nil {
		return PartitionMicroResult{}, err
	}

	measure := func(p partition.Partitioner) (float64, float64, error) {
		var sum, sumSq float64
		for run := 0; run < runs; run++ {
			start := time.Now()
			var sink int
			for _, kp := range keys {
				idx, err := p.Partition(kp)
				if err != nil {
					return 0, 0, err
				}
				sink += idx
			}
			s := time.Since(start).Seconds()
			if sink < 0 {
				return 0, 0, fmt.Errorf("impossible")
			}
			sum += s
			sumSq += s * s
		}
		mean := sum / float64(runs)
		v := sumSq/float64(runs) - mean*mean
		return mean, sqrt(v), nil
	}

	res := PartitionMicroResult{PairCount: pairCount, Runs: runs}
	if res.DefaultSecs, res.DefaultStdev, err = measure(mod); err != nil {
		return res, err
	}
	if res.PlusSecs, res.PlusStdev, err = measure(pp); err != nil {
		return res, err
	}
	return res, nil
}

// PartitionMicroAllocs measures partition+'s per-pair allocation profile
// with the testing benchmark harness: allocations and bytes per
// Partition call, plus mean wall time per call. Feeds the cross-PR perf
// trajectory (BENCH_PR2.json).
func PartitionMicroAllocs(pairCount, reducers int) (allocsPerOp, bytesPerOp, nsPerOp float64, err error) {
	if pairCount < 1 || reducers < 1 {
		return 0, 0, 0, fmt.Errorf("experiments: bad partition micro config")
	}
	rows := int64(pairCount+999) / 1000
	space := coords.Slab{Corner: coords.NewCoord(0, 0), Shape: coords.NewShape(rows, 1000)}
	keys := make([]coords.Coord, pairCount)
	for i := range keys {
		if keys[i], err = space.Delinearize(int64(i)); err != nil {
			return 0, 0, 0, err
		}
	}
	pp, err := partition.NewPartitionPlus(space, reducers, 0)
	if err != nil {
		return 0, 0, 0, err
	}
	var benchErr error
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		sink := 0
		for i := 0; i < b.N; i++ {
			idx, err := pp.Partition(keys[i%len(keys)])
			if err != nil {
				benchErr = err
				return
			}
			sink += idx
		}
		if sink < 0 {
			benchErr = fmt.Errorf("impossible")
		}
	})
	if benchErr != nil {
		return 0, 0, 0, benchErr
	}
	n := float64(r.N)
	return float64(r.MemAllocs) / n, float64(r.MemBytes) / n, float64(r.T.Nanoseconds()) / n, nil
}
