// Package experiments contains one driver per table and figure in the
// paper's evaluation (§4), regenerating the same rows and series from
// this repository's implementation. Cluster-scale runs (Figures 9-13,
// Table 3) execute the real planner — real splits, real partition+
// keyblocks, real dependency graphs — on the discrete-event testbed
// model; Table 2 and the partition+ micro-benchmark perform real file IO
// and real partitioning work.
package experiments

import (
	"fmt"

	"sidr/internal/core"
	"sidr/internal/depgraph"
	"sidr/internal/hdfs"
	"sidr/internal/mapreduce"
	"sidr/internal/ops"
	"sidr/internal/partition"
	"sidr/internal/query"
	"sidr/internal/simcluster"
	"sidr/internal/trace"
)

// PaperSplits is the paper's input-split count for the 348 GB Query 1/2
// dataset at a 128 MB HDFS block size (§4.1).
const PaperSplits = 2781

// Query1 returns the paper's Query 1 (§4.1): a median over the
// {7200, 360, 720, 50} windspeed dataset with extraction shape
// {2, 36, 36, 10} — 300 days of hourly windspeed reduced to 2-day medians
// per 18°×36°×10-elevation region.
func Query1() *query.Query {
	q, err := query.Parse("median windspeed[0,0,0,0 : 7200,360,720,50] es {2,36,36,10}")
	if err != nil {
		panic(err) // the literal is constant and tested
	}
	return q
}

// Query2 returns the paper's Query 2 (§4.1): a filter over a same-sized
// normally distributed dataset returning values more than three standard
// deviations above the mean (0.1% of the data), with extraction shape
// {2, 40, 40, 10}.
func Query2() *query.Query {
	q, err := query.Parse("filter_gt gauss[0,0,0,0 : 7200,360,720,50] es {2,40,40,10} param 3")
	if err != nil {
		panic(err)
	}
	return q
}

// PaperPlan derives a paper-scale plan: the query split into exactly
// PaperSplits leading-dimension bands (matching the paper's 2,781) with
// the given engine and reducer count.
func PaperPlan(q *query.Query, engine core.Engine, reducers int) (*core.Plan, error) {
	return PaperPlanEncoded(q, engine, reducers, nil)
}

// PaperBytesPerPoint is the dataset element size (the paper stores int
// values; 348 GB over 93.31 G points ≈ 4 bytes).
const PaperBytesPerPoint = 4

// PaperPlanEncoded is PaperPlan with an explicit modulo key encoding
// (used by the Figure 13 skew experiment). Splits carry locality hints
// from a simulated 24-node HDFS namespace holding the dataset at 3×
// replication, so the schedulers' locality trees operate on realistic
// block placements.
func PaperPlanEncoded(q *query.Query, engine core.Engine, reducers int, enc partition.KeyEncoding) (*core.Plan, error) {
	p, err := core.NewPlan(q, engine, core.Options{
		Reducers:    reducers,
		SplitPoints: q.Input.Size(), // single split; replaced below
		KeyEncoding: enc,
	})
	if err != nil {
		return nil, err
	}
	slabs, err := q.Input.SplitDimCount(0, PaperSplits)
	if err != nil {
		return nil, err
	}
	ns, err := hdfs.NewNamespace(simcluster.Nodes(24), hdfs.Config{Seed: 24})
	if err != nil {
		return nil, err
	}
	const file = "dataset.ncf"
	if err := ns.AddFile(file, q.Input.Size()*PaperBytesPerPoint); err != nil {
		return nil, err
	}
	splits := make([]mapreduce.InputSplit, len(slabs))
	var off int64
	for i, s := range slabs {
		hosts, err := ns.RangeHosts(file, off*PaperBytesPerPoint, s.Size()*PaperBytesPerPoint)
		if err != nil {
			return nil, err
		}
		// The best three replicas suffice for the scheduler.
		if len(hosts) > 3 {
			hosts = hosts[:3]
		}
		splits[i] = mapreduce.InputSplit{ID: i, Slab: s, Hosts: hosts}
		off += s.Size()
	}
	p.Splits = splits
	p.Graph, err = depgraph.Build(q, slabs, p.Part)
	if err != nil {
		return nil, err
	}
	return p, nil
}

// TestbedConfig returns the simulated cluster matching the paper's
// testbed (§4, Experimental Setup): 24 DataNode/TaskTracker nodes with 4
// Map and 3 Reduce slots each, GigE networking, and cost constants
// calibrated so SciHadoop's Query 1 Map phase completes around 850 s and
// total around 1,250 s at 22 Reduce tasks — the regime of Figure 9.
func TestbedConfig(seed int64) simcluster.Config {
	return simcluster.Config{
		Workers:     24,
		MapSlots:    4,
		ReduceSlots: 3,
		// 2,781 maps over 96 slots = 29 waves; ~29 s per map.
		MapBase:         2.0,
		MapPerPoint:     8.1e-7,
		LocalityPenalty: 1.25,
		JitterFrac:      0.10,
		// One GigE link shared by ~3 concurrent reduce fetch streams.
		ShuffleBandwidth: 40e6,
		ReduceBase:       2.0,
		ReducePerPair:    6.5e-8,
		Seed:             seed,
	}
}

// PaperWorkload derives the simulator workload from a paper-scale plan,
// charging shuffle bytes faithfully to the operator class: holistic
// operators ship every source sample (8 bytes each); distributive and
// filter operators ship combined pairs (filters ship only survivors,
// estimated with the survivor fraction).
func PaperWorkload(p *core.Plan, survivorFrac float64) (core.SimWorkload, error) {
	op, err := p.Query.Op()
	if err != nil {
		return core.SimWorkload{}, err
	}
	w := core.SimWorkload{}
	for _, s := range p.Splits {
		w.Splits = append(w.Splits, simcluster.Split{
			Points: s.Slab.Size(),
			Bytes:  s.Slab.Size() * 8,
			Hosts:  s.Hosts,
		})
	}
	const pairOverhead = 40 // serialised kv.Value header bytes
	for l := 0; l < p.Part.NumKeyblocks(); l++ {
		src := p.Graph.ExpectedCount[l]
		var pairs, inBytes, outBytes int64
		switch op.Kind() {
		case ops.Holistic:
			// Every source sample crosses the network and is merged.
			pairs = src
			inBytes = src * 8
			outBytes = keysIn(p, l) * 8
		case ops.Filter:
			surv := int64(float64(src) * survivorFrac)
			pairs = surv
			inBytes = surv*8 + keysIn(p, l)*pairOverhead
			outBytes = surv * 16 // coordinate/value pairs
		default: // distributive
			pairs = keysIn(p, l)
			inBytes = pairs * pairOverhead
			outBytes = pairs * 8
		}
		w.Reduces = append(w.Reduces, simcluster.Reduce{
			Pairs:    pairs,
			InBytes:  inBytes,
			OutBytes: outBytes,
			Deps:     p.Graph.KBToSplits[l],
		})
	}
	return w, nil
}

// keysIn returns the number of K' keys with data in keyblock l.
func keysIn(p *core.Plan, l int) int64 {
	if p.Keyblocks != nil {
		return p.Keyblocks[l].Size()
	}
	// Modulo keyblocks: expected count divided by tile size.
	tile := p.Query.Extraction.Shape.Size()
	if tile == 0 {
		tile = 1
	}
	return p.Graph.ExpectedCount[l] / tile
}

// CurveResult summarises one simulated configuration for a
// task-completion figure.
type CurveResult struct {
	// Label names the curve the way the figure legend does, e.g.
	// "22 Reduces(SS)".
	Label string
	// MapsDone, FirstResult and Makespan are the headline times.
	MapsDone    float64
	FirstResult float64
	Makespan    float64
	// ReduceQuartiles are the times at which 25/50/75/100% of Reduce
	// output was available.
	ReduceQuartiles [4]float64
	// MapFracAtFirst is the fraction of Map tasks that had completed
	// when the first result arrived — the abstract's "initial results
	// with only 6% of the query completed" metric.
	MapFracAtFirst float64
	// Connections is the shuffle-connection total (Table 3's metric).
	Connections int64
	// Result retains the raw trace for rendering full curves.
	Result *simcluster.Result
}

// summarize converts a simulated run into a CurveResult.
func summarize(label string, res *simcluster.Result) CurveResult {
	s := res.Trace.SeriesOf(trace.Reduce)
	cr := CurveResult{
		Label:       label,
		MapsDone:    res.Stats.MapsDone,
		FirstResult: res.Stats.FirstResult,
		Makespan:    res.Stats.Makespan,
		Connections: res.Stats.Connections,
		Result:      res,
	}
	for i, f := range []float64{0.25, 0.5, 0.75, 1.0} {
		cr.ReduceQuartiles[i] = s.TimeAtFraction(f)
	}
	cr.MapFracAtFirst = res.Trace.SeriesOf(trace.Map).FractionAt(cr.FirstResult)
	return cr
}

// Format renders the result as one harness output row.
func (c CurveResult) Format() string {
	return fmt.Sprintf("%-24s mapsDone=%7.1fs first=%7.1fs (maps %3.0f%%) q50=%7.1fs total=%7.1fs conns=%d",
		c.Label, c.MapsDone, c.FirstResult, c.MapFracAtFirst*100, c.ReduceQuartiles[1], c.Makespan, c.Connections)
}
