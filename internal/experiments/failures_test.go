package experiments

import (
	"strings"
	"testing"
)

func TestFailureStudyShape(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale simulation")
	}
	cfg := TestbedConfig(1)
	rows, err := FailureStudy(cfg, 176, []float64{0, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	// §6 hypothesis: with no failures, skipping persistence wins (its
	// Map phase is faster).
	if !(rows[0].RecomputeMakespan < rows[0].PersistMakespan) {
		t.Fatalf("no-persist not faster at p=0: %v vs %v",
			rows[0].RecomputeMakespan, rows[0].PersistMakespan)
	}
	if rows[0].PersistFailures != 0 || rows[0].RecomputeFailures != 0 {
		t.Fatalf("failures at p=0: %+v", rows[0])
	}
	// At a 50% failure rate re-execution dominates and persisting wins.
	if !(rows[1].PersistMakespan < rows[1].RecomputeMakespan) {
		t.Fatalf("persist not faster at p=0.5: %v vs %v",
			rows[1].PersistMakespan, rows[1].RecomputeMakespan)
	}
	if rows[1].PersistFailures == 0 {
		t.Fatal("no failures injected at p=0.5")
	}
	if !strings.Contains(rows[0].Format(), "winner=") {
		t.Fatalf("format = %q", rows[0].Format())
	}
}
