package experiments

import (
	"fmt"

	"sidr/internal/core"
	"sidr/internal/partition"
	"sidr/internal/query"
	"sidr/internal/simcluster"
	"sidr/internal/skew"
	"sidr/internal/trace"
)

// runConfig simulates one (query, engine, reducers) configuration at
// paper scale and summarises it.
func runConfig(q *query.Query, engine core.Engine, reducers int, cfg simcluster.Config, survivorFrac float64, label string) (CurveResult, error) {
	p, err := PaperPlan(q, engine, reducers)
	if err != nil {
		return CurveResult{}, err
	}
	w, err := PaperWorkload(p, survivorFrac)
	if err != nil {
		return CurveResult{}, err
	}
	res, err := p.Simulate(cfg, w)
	if err != nil {
		return CurveResult{}, err
	}
	return summarize(label, res), nil
}

// Figure9 regenerates Figure 9: Map and Reduce task completion for
// Query 1 under Hadoop, SciHadoop and SIDR, all with 22 Reduce tasks.
// Expected shape: SIDR's first result arrives long before SciHadoop's,
// which arrives long before Hadoop's; SciHadoop and SIDR total times are
// within a few percent; Hadoop's Map phase is ~2.4× slower.
func Figure9(cfg simcluster.Config) ([]CurveResult, error) {
	q := Query1()
	var out []CurveResult
	for _, e := range []core.Engine{core.EngineHadoop, core.EngineSciHadoop, core.EngineSIDR} {
		label := fmt.Sprintf("22 Reduces(%s)", shortName(e))
		cr, err := runConfig(q, e, 22, cfg, 0, label)
		if err != nil {
			return nil, fmt.Errorf("figure 9 %v: %w", e, err)
		}
		out = append(out, cr)
	}
	return out, nil
}

// Figure10 regenerates Figure 10: Query 1 Reduce completion for
// SciHadoop at 22 Reduce tasks and SIDR at 22, 66, 176 and 528. Expected
// shape: SIDR's time-to-first-result and total time both fall as Reduce
// tasks are added, approaching the Map completion curve; SciHadoop gains
// nothing from more Reduce tasks.
func Figure10(cfg simcluster.Config) ([]CurveResult, error) {
	q := Query1()
	out := make([]CurveResult, 0, 5)
	cr, err := runConfig(q, core.EngineSciHadoop, 22, cfg, 0, "22 Reduces(SH)")
	if err != nil {
		return nil, fmt.Errorf("figure 10 SciHadoop: %w", err)
	}
	out = append(out, cr)
	for _, r := range []int{22, 66, 176, 528} {
		cr, err := runConfig(q, core.EngineSIDR, r, cfg, 0, fmt.Sprintf("%d Reduces(SS)", r))
		if err != nil {
			return nil, fmt.Errorf("figure 10 SIDR %d: %w", r, err)
		}
		out = append(out, cr)
	}
	return out, nil
}

// Query2SurvivorFrac is the fraction of values a 3σ filter passes
// (§4.1: 0.1% of the dataset).
const Query2SurvivorFrac = 0.001

// Figure11 regenerates Figure 11: the Query 2 filter under SciHadoop at
// 22 Reduce tasks and SIDR at 22, 66 and 176. Expected shape: Reduce
// tasks carry so little data that the completion curves approach optimal
// with fewer tasks, and SIDR's total-time gain over SciHadoop is much
// smaller than for Query 1.
func Figure11(cfg simcluster.Config) ([]CurveResult, error) {
	q := Query2()
	out := make([]CurveResult, 0, 4)
	cr, err := runConfig(q, core.EngineSciHadoop, 22, cfg, Query2SurvivorFrac, "22 Reduces(SH)")
	if err != nil {
		return nil, fmt.Errorf("figure 11 SciHadoop: %w", err)
	}
	out = append(out, cr)
	for _, r := range []int{22, 66, 176} {
		cr, err := runConfig(q, core.EngineSIDR, r, cfg, Query2SurvivorFrac, fmt.Sprintf("%d Reduces(SS)", r))
		if err != nil {
			return nil, fmt.Errorf("figure 11 SIDR %d: %w", r, err)
		}
		out = append(out, cr)
	}
	return out, nil
}

// Figure12Row is one reducer-count row of the variance experiment.
type Figure12Row struct {
	Reducers   int
	Runs       int
	MeanTotal  float64
	MaxStdDev  float64
	MeanStdDev float64
}

// Format renders the row as one harness output line.
func (r Figure12Row) Format() string {
	return fmt.Sprintf("%4d reducers over %d runs: meanTotal=%7.1fs maxStdDev=%6.1fs meanStdDev=%6.1fs",
		r.Reducers, r.Runs, r.MeanTotal, r.MaxStdDev, r.MeanStdDev)
}

// Figure12 regenerates Figure 12: variance in SIDR Reduce completion
// times across `runs` seeded executions, for 22 and 88 Reduce tasks.
// Expected shape: more Reduce tasks shrink each task's dependency set and
// with it the completion-time variance.
func Figure12(cfg simcluster.Config, runs int) ([]Figure12Row, error) {
	if runs < 2 {
		return nil, fmt.Errorf("figure 12 needs at least 2 runs, got %d", runs)
	}
	q := Query1()
	var out []Figure12Row
	for _, r := range []int{22, 88} {
		p, err := PaperPlan(q, core.EngineSIDR, r)
		if err != nil {
			return nil, err
		}
		w, err := PaperWorkload(p, 0)
		if err != nil {
			return nil, err
		}
		var series []trace.Series
		var totals float64
		for run := 0; run < runs; run++ {
			c := cfg
			c.Seed = cfg.Seed + int64(run)*7919
			res, err := p.Simulate(c, w)
			if err != nil {
				return nil, err
			}
			series = append(series, res.Trace.SeriesOf(trace.Reduce))
			totals += res.Stats.Makespan
		}
		vs, err := trace.VarianceAcross(series)
		if err != nil {
			return nil, err
		}
		out = append(out, Figure12Row{
			Reducers:   r,
			Runs:       runs,
			MeanTotal:  totals / float64(runs),
			MaxStdDev:  vs.MaxStdDev(),
			MeanStdDev: vs.MeanStdDev(),
		})
	}
	return out, nil
}

// Figure13 regenerates Figure 13: the intermediate-key-skew pathology.
// The query's extraction shape is even in every dimension, so under the
// corner-in-K key encoding every encoded key is even and stock modulo
// partitioning starves all odd Reduce tasks, doubling the load on the
// rest; partition+ distributes evenly. Expected shape: stock completes
// roughly 40% slower (the paper reports SIDR 42% faster).
//
// The paper ran this on a separate reduce-heavy query (its Figure 13
// x-axis reaches 5,000 s against Query 1's 1,400 s); tripling the
// per-pair Reduce cost reproduces that regime while keeping Query 1's
// key geometry, which is what actually triggers the pathology.
func Figure13(cfg simcluster.Config) ([]CurveResult, error) {
	cfg.ReducePerPair *= 3
	q := Query1() // ES {2,36,36,10}: tile corners even in every dimension
	enc := partition.CornerInKEncoding{
		InputSpace: q.Input.Shape,
		Extraction: q.Extraction,
	}
	stockPlan, err := PaperPlanEncoded(q, core.EngineSciHadoop, 22, enc)
	if err != nil {
		return nil, err
	}
	w, err := PaperWorkload(stockPlan, 0)
	if err != nil {
		return nil, err
	}
	stockRes, err := stockPlan.Simulate(cfg, w)
	if err != nil {
		return nil, err
	}
	sidrCR, err := runConfig(q, core.EngineSIDR, 22, cfg, 0, "22 Reducers (SIDR)")
	if err != nil {
		return nil, err
	}
	return []CurveResult{summarize("22 Reducers (stock)", stockRes), sidrCR}, nil
}

// SkewLoads computes the §4.3 keyblock-load imbalance statistics for a
// plan.
func SkewLoads(p *core.Plan) skew.Summary {
	return skew.Summarize(p.Graph.ExpectedCount)
}

// Figure13Skew returns the load-imbalance summaries behind Figure 13:
// the pathological stock-modulo assignment and partition+'s balanced
// one, at 22 Reduce tasks over Query 1's key geometry.
func Figure13Skew() (stock, sidr skew.Summary, err error) {
	q := Query1()
	enc := partition.CornerInKEncoding{InputSpace: q.Input.Shape, Extraction: q.Extraction}
	stockPlan, err := PaperPlanEncoded(q, core.EngineSciHadoop, 22, enc)
	if err != nil {
		return skew.Summary{}, skew.Summary{}, err
	}
	sidrPlan, err := PaperPlan(q, core.EngineSIDR, 22)
	if err != nil {
		return skew.Summary{}, skew.Summary{}, err
	}
	return SkewLoads(stockPlan), SkewLoads(sidrPlan), nil
}

func shortName(e core.Engine) string {
	switch e {
	case core.EngineHadoop:
		return "H"
	case core.EngineSciHadoop:
		return "SH"
	default:
		return "SS"
	}
}
