package sidr

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// hotBand is deterministic data whose high values are confined to a
// narrow band of leading-dimension rows, so selective predicates can
// prune most splits while unselective ones prune none.
func hotBand(k []int64) float64 {
	v := float64((k[0]*31+k[1]*7)%97) / 97.0 * 20.0 // background in [0, 20)
	if k[0] >= 8 && k[0] < 16 {
		v += 100 // hot band: [100, 120)
	}
	return v
}

// TestPrunedQueriesMatchUnpruned is the seeded property test for the
// structural index: every randomly drawn value-predicated query must
// return byte-identical results with and without the index — whether
// the predicate matches everything, nothing, or just the hot band —
// and across the draw at least one plan must actually have pruned.
func TestPrunedQueriesMatchUnpruned(t *testing.T) {
	shape := []int64{64, 12}
	ds, err := Synthetic(shape, hotBand)
	if err != nil {
		t.Fatal(err)
	}
	vi, err := ds.BuildIndex(16)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(7))
	totalPruned := 0
	for i := 0; i < 30; i++ {
		var qs string
		// Thresholds span [-10, 130]: below, inside and above both the
		// background and hot ranges.
		p := rng.Float64()*140 - 10
		switch rng.Intn(3) {
		case 0:
			qs = fmt.Sprintf("filter_gt t[0,0 : 64,12] es {4,4} param %g", p)
		case 1:
			qs = fmt.Sprintf("filter_lt t[0,0 : 64,12] es {4,4} param %g", p)
		default:
			p2 := rng.Float64()*140 - 10
			if p2 < p {
				p, p2 = p2, p
			}
			qs = fmt.Sprintf("filter_range t[0,0 : 64,12] es {4,4} param %g,%g", p, p2)
		}
		q, err := ParseQuery(qs)
		if err != nil {
			t.Fatalf("case %d: parse %q: %v", i, qs, err)
		}
		opts := RunOptions{Engine: SIDR, Reducers: 3, SplitPoints: 48}
		base, err := Run(ds, q, opts)
		if err != nil {
			t.Fatalf("case %d: unpruned %q: %v", i, qs, err)
		}
		opts.Index = vi
		prep, err := Prepare(shape, q, opts)
		if err != nil {
			t.Fatalf("case %d: prepare pruned %q: %v", i, qs, err)
		}
		pruned, err := prep.Run(t.Context(), ds, opts)
		if err != nil {
			t.Fatalf("case %d: pruned %q: %v", i, qs, err)
		}
		if !reflect.DeepEqual(base.Keys, pruned.Keys) || !reflect.DeepEqual(base.Values, pruned.Values) {
			t.Fatalf("case %d: pruned result diverges for %q\nunpruned: %d rows\npruned:   %d rows (dropped %d splits)",
				i, qs, len(base.Keys), len(pruned.Keys), prep.PrunedSplits())
		}
		totalPruned += prep.PrunedSplits()
		if prep.PrunedSplits() > 0 && prep.SplitCount() >= len(base.Keys) {
			// SplitCount reflects the post-prune dispatch set.
			_ = prep.SplitCount()
		}
	}
	if totalPruned == 0 {
		t.Fatal("30 seeded queries never pruned a split — the property test exercised nothing")
	}
}

// TestPrunedSubsetInputAndEngines checks pruning on an offset sub-slab
// input (partial index coverage paths) and on every engine.
func TestPrunedSubsetInputAndEngines(t *testing.T) {
	shape := []int64{64, 12}
	ds, err := Synthetic(shape, hotBand)
	if err != nil {
		t.Fatal(err)
	}
	vi, err := ds.BuildIndex(16)
	if err != nil {
		t.Fatal(err)
	}
	q, err := ParseQuery("filter_gt t[4,0 : 48,12] es {4,4} param 90")
	if err != nil {
		t.Fatal(err)
	}
	for _, engine := range []Engine{Hadoop, SciHadoop, SIDR} {
		opts := RunOptions{Engine: engine, Reducers: 2, SplitPoints: 36}
		base, err := Run(ds, q, opts)
		if err != nil {
			t.Fatalf("engine %v unpruned: %v", engine, err)
		}
		opts.Index = vi
		prep, err := Prepare(shape, q, opts)
		if err != nil {
			t.Fatalf("engine %v prepare: %v", engine, err)
		}
		pruned, err := prep.Run(t.Context(), ds, opts)
		if err != nil {
			t.Fatalf("engine %v pruned: %v", engine, err)
		}
		if prep.PrunedSplits() == 0 {
			t.Fatalf("engine %v: selective query pruned nothing", engine)
		}
		if !reflect.DeepEqual(base.Keys, pruned.Keys) || !reflect.DeepEqual(base.Values, pruned.Values) {
			t.Fatalf("engine %v: pruned result diverges", engine)
		}
	}
}
