// Command datagen generates synthetic scientific datasets as ncfile
// containers for use with sidrquery and the examples.
//
// Usage:
//
//	datagen -out wind.ncf -var windspeed -shape 144,36,36,10 -kind windspeed [-seed 1]
//	datagen -out gauss.ncf -var g -shape 200,40,40 -kind gaussian -mean 20 -std 5
//	datagen -out temp.ncf -var temperature -shape 365,250,200 -kind temperature
package main

import (
	"flag"
	"fmt"
	"os"

	"sidr/internal/coords"
	"sidr/internal/datagen"
)

func main() {
	var (
		out     = flag.String("out", "", "output .ncf path (required)")
		varName = flag.String("var", "data", "variable name")
		shapeS  = flag.String("shape", "", "dataset shape, e.g. 365,250,200 (required)")
		kind    = flag.String("kind", "windspeed", "generator: windspeed, gaussian, temperature, integers, zipf")
		seed    = flag.Int64("seed", 1, "generator seed")
		mean    = flag.Float64("mean", 0, "gaussian mean")
		std     = flag.Float64("std", 1, "gaussian standard deviation")
		zskew   = flag.Float64("skew", 1.2, "zipf presence skew along the leading dimension")
	)
	flag.Parse()
	if *out == "" || *shapeS == "" {
		flag.Usage()
		os.Exit(2)
	}
	shape, err := coords.ParseShape(*shapeS)
	if err != nil {
		fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
		os.Exit(1)
	}
	var fn func(coords.Coord) float64
	switch *kind {
	case "windspeed":
		fn = datagen.Windspeed(*seed)
	case "gaussian":
		fn = datagen.Gaussian(*seed, *mean, *std)
	case "temperature":
		fn = datagen.Temperature(*seed)
	case "integers":
		fn = datagen.Integers(*seed)
	case "zipf":
		fn = datagen.Zipf(*seed, *zskew)
	default:
		fmt.Fprintf(os.Stderr, "datagen: unknown kind %q\n", *kind)
		os.Exit(1)
	}
	if err := datagen.WriteDataset(*out, *varName, shape, fn); err != nil {
		fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s: %s %s (%d points)\n", *out, *varName, shape, shape.Size())
}
