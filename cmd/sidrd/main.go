// Command sidrd is the long-running query-serving daemon: it registers
// the *.ncf datasets under -data, runs queries with an LRU plan cache,
// and streams each keyblock's output as NDJSON the moment it commits —
// SIDR's early correct results over the wire.
//
// All jobs share one process-wide task executor of -exec-workers
// goroutines: Map/Reduce tasks from every running job are dispatched
// onto that single bounded pool (a job's "workers" request caps its
// share), so total task concurrency stays fixed no matter how many jobs
// -max-jobs admits.
//
// The serving tier in front of execution: finished results are kept in
// a -result-cache-bytes LRU keyed on {dataset version, canonical
// query, engine, plan parameters} and repeat queries are answered from
// it without re-executing; concurrent identical queries collapse onto
// one running job; and -tenant/-tenant-default give each X-SIDR-Tenant
// a max-in-flight quota (429 detail "tenant-quota" on breach) and a
// weighted-fair share of the executor.
//
// Usage:
//
//	sidrd -addr :7171 -data ./datasets -max-jobs 8 -exec-workers 8 -queue 64
//
// A session:
//
//	curl -s localhost:7171/v1/query -d '{"dataset":"wind","query":"median windspeed[0,0,0,0 : 144,36,36,10] es {2,36,36,10}"}'
//	curl -sN localhost:7171/v1/jobs/job-000001/stream
//	curl -s  localhost:7171/metrics
//
// SIGINT/SIGTERM shut the daemon down gracefully: the listener stops,
// queued jobs are cancelled, and in-flight jobs drain (up to
// -drain-timeout, after which they are cancelled too).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"sidr/internal/cluster"
	"sidr/internal/faultinject"
	"sidr/internal/hdfs"
	"sidr/internal/jobs"
	"sidr/internal/metrics"
	"sidr/internal/server"
)

func main() {
	var (
		addr      = flag.String("addr", ":7171", "listen address")
		dataDir   = flag.String("data", "", "directory of *.ncf datasets to serve")
		maxJobs   = flag.Int("max-jobs", 0, "max concurrently running jobs (0 = GOMAXPROCS)")
		execWork  = flag.Int("exec-workers", 0, "task executor pool size shared by all jobs (0 = GOMAXPROCS)")
		queue     = flag.Int("queue", 64, "queued-job admission limit")
		planCache = flag.Int("plan-cache", 128, "LRU plan cache entries (-1 disables)")
		retain    = flag.Int("retain-jobs", 256, "finished jobs kept for status/stream lookups before eviction (-1 keeps all)")
		drain     = flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown drain budget for in-flight jobs")
		clusterOn = flag.Bool("cluster", false, "embed the cluster coordinator: accept sidr-worker registrations and route {\"cluster\":true} jobs through the distributed runtime")
		replicas  = flag.Int("spill-replicas", 1, "replicate each committed Map attempt's spill pack to this many other workers so worker loss costs a re-fetch, not a re-execution; 0 disables (with -cluster)")
		nodes     = flag.String("nodes", "", "comma-separated HDFS namespace node names: datasets get simulated block placements across them and Map dispatch prefers split-local workers (match via sidr-worker -node) (with -cluster)")
		hbTimeout = flag.Duration("heartbeat-timeout", 5*time.Second, "evict workers that miss heartbeats for this long (with -cluster)")
		specOn    = flag.Bool("speculation", false, "launch backup attempts for straggling Map dispatches (with -cluster)")
		batchOn   = flag.Bool("batch-shuffle", true, "fetch each reduce's spill subset with one batched request per worker; false forces per-spill fetches (with -cluster)")
		chaos     = flag.String("chaos", "", "coordinator-side fault-injection spec applied to dispatch/shuffle requests, e.g. \"seed=42,match=/v1/shuffle/,delay=0.1:50ms,flip=0.01\" (see internal/faultinject)")
		rcBytes   = flag.Int64("result-cache-bytes", 64<<20, "byte budget of the versioned result cache serving repeat queries without re-execution (-1 disables)")
		tenantDef = flag.String("tenant-default", "0:1", "admission policy MAXINFLIGHT[:WEIGHT] for tenants without an explicit -tenant entry (0 = unlimited)")
	)
	tenants := make(map[string]jobs.TenantPolicy)
	flag.Func("tenant", "per-tenant admission policy NAME=MAXINFLIGHT[:WEIGHT], repeatable; tenants are named by the X-SIDR-Tenant header", func(s string) error {
		name, p, err := jobs.ParseTenantSpec(s)
		if err != nil {
			return err
		}
		tenants[name] = p
		return nil
	})
	flag.Parse()
	tdef, err := jobs.ParseTenantPolicy(*tenantDef)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sidrd: -tenant-default: %v\n", err)
		os.Exit(1)
	}
	if err := run(*addr, *dataDir, *maxJobs, *execWork, *queue, *planCache, *retain, *drain, *clusterOn, *replicas, *nodes, *hbTimeout, *specOn, *batchOn, *chaos, *rcBytes, tenants, tdef); err != nil {
		fmt.Fprintf(os.Stderr, "sidrd: %v\n", err)
		os.Exit(1)
	}
}

func run(addr, dataDir string, maxJobs, execWorkers, queue, planCache, retain int, drain time.Duration, clusterOn bool, replicas int, nodes string, hbTimeout time.Duration, specOn, batchOn bool, chaos string, rcBytes int64, tenants map[string]jobs.TenantPolicy, tenantDefault jobs.TenantPolicy) error {
	reg := metrics.New()
	registry := server.NewRegistry()
	var ns *hdfs.Namespace
	if nodes != "" {
		var names []string
		for _, n := range strings.Split(nodes, ",") {
			if n = strings.TrimSpace(n); n != "" {
				names = append(names, n)
			}
		}
		var err error
		ns, err = hdfs.NewNamespace(names, hdfs.Config{})
		if err != nil {
			return fmt.Errorf("-nodes: %w", err)
		}
		registry.SetNamespace(ns)
		log.Printf("sidrd: simulated HDFS namespace over %d node(s); Map dispatch prefers split-local workers", len(names))
	}
	if dataDir != "" {
		n, err := registry.ScanDir(dataDir)
		if err != nil {
			return err
		}
		log.Printf("sidrd: serving %d dataset(s) from %s", n, dataDir)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var coord *cluster.Coordinator
	if clusterOn {
		if replicas == 0 {
			replicas = -1 // flag 0 = off; config 0 would mean "default 1"
		}
		ccfg := cluster.CoordinatorConfig{
			HeartbeatTimeout:  hbTimeout,
			SpillReplicas:     replicas,
			Metrics:           reg,
			Logf:              log.Printf,
			Speculation:       specOn,
			DisableBatchFetch: !batchOn,
		}
		if chaos != "" {
			spec, err := faultinject.Parse(chaos)
			if err != nil {
				return fmt.Errorf("-chaos: %w", err)
			}
			// Wraps the default transport: a response-header timeout would
			// cut off legitimately long Map executions mid-dispatch.
			ccfg.Client = &http.Client{
				Transport: faultinject.New(spec).Transport(http.DefaultTransport),
			}
			log.Printf("sidrd: CHAOS enabled on dispatch/shuffle client: %s", chaos)
		}
		coord = cluster.NewCoordinator(ccfg)
		defer coord.Close()
		go coord.Start(ctx)
		log.Printf("sidrd: clustering enabled (heartbeat timeout %v, speculation %v); workers register at /v1/cluster/register", hbTimeout, specOn)
	}
	mgr, err := jobs.NewManager(jobs.Config{
		MaxConcurrent:    maxJobs,
		ExecWorkers:      execWorkers,
		QueueDepth:       queue,
		PlanCacheSize:    planCache,
		RetainJobs:       retain,
		ResultCacheBytes: rcBytes,
		Tenants:          tenants,
		TenantDefault:    tenantDefault,
		Datasets:         registry,
		Cluster:          coord,
		Namespace:        ns,
		Metrics:          reg,
	})
	if err != nil {
		return err
	}

	httpSrv := &http.Server{Addr: addr, Handler: server.New(mgr, registry, reg, coord)}

	errCh := make(chan error, 1)
	go func() {
		log.Printf("sidrd: listening on %s", addr)
		errCh <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	log.Printf("sidrd: shutting down, draining in-flight jobs (%v budget)", drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("sidrd: http shutdown: %v", err)
	}
	if err := mgr.Shutdown(shutdownCtx); err != nil {
		log.Printf("sidrd: drain budget exhausted, jobs cancelled: %v", err)
	}
	if err := registry.Close(); err != nil {
		log.Printf("sidrd: closing datasets: %v", err)
	}
	log.Printf("sidrd: bye")
	return nil
}
