package main

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"time"

	"sidr/internal/cluster"
	"sidr/internal/coords"
	"sidr/internal/exec"
	"sidr/internal/kv"
	"sidr/internal/metrics"
)

// shuffleMicroResult is the networked-shuffle micro-benchmark: one
// partition+ keyblock spill written with the kv codec, then fetched
// repeatedly from a real cluster.Worker shuffle endpoint over loopback
// HTTP, with the kv-count annotation validated on every fetch — the
// exact per-dependency fetch path a clustered Reduce task performs.
type shuffleMicroResult struct {
	Pairs      int     `json:"pairs"`
	SpillBytes int64   `json:"spill_bytes"`
	Fetches    int     `json:"fetches"`
	NsPerFetch float64 `json:"ns_per_fetch"`
	MBPerSec   float64 `json:"mb_per_s"`
}

func (r shuffleMicroResult) Format() string {
	return fmt.Sprintf("%d pairs (%d B spill), %d fetches: %.0f ns/fetch, %.1f MB/s",
		r.Pairs, r.SpillBytes, r.Fetches, r.NsPerFetch, r.MBPerSec)
}

// shuffleMicro writes one spill and times fetch+decode+validate round
// trips against the worker's shuffle handler on a loopback listener.
func shuffleMicro(pairs, fetches int) (shuffleMicroResult, error) {
	res := shuffleMicroResult{Pairs: pairs, Fetches: fetches}
	dir, err := os.MkdirTemp("", "sidrbench-shuffle-*")
	if err != nil {
		return res, err
	}
	defer os.RemoveAll(dir)
	w, err := cluster.NewWorker(cluster.WorkerConfig{Name: "bench", SpillDir: dir})
	if err != nil {
		return res, err
	}
	defer w.Close()

	// One sorted spill with aggregate values plus a few samples each, to
	// exercise both fixed and variable-length parts of the codec.
	ps := make([]kv.Pair, pairs)
	for i := range ps {
		x := float64(i%97) * 0.5
		ps[i] = kv.Pair{
			Key: coords.NewCoord(int64(i), 0, 0),
			Value: kv.Value{
				Sum: x, SumSq: x * x, Min: x, Max: x, Count: 1,
				Samples: []float64{x, x + 1, x + 2, x + 3},
			},
		}
	}
	sourceCount := int64(pairs)
	// The worker serves spills from its documented on-disk layout:
	// spillDir/{job}/{split}-{attempt}/kb-{l}.spill.
	path := filepath.Join(dir, "bench", "0-0", "kb-0.spill")
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return res, err
	}
	f, err := os.Create(path)
	if err != nil {
		return res, err
	}
	if err := kv.WriteSpill(f, 3, sourceCount, ps); err != nil {
		f.Close()
		return res, err
	}
	if err := f.Close(); err != nil {
		return res, err
	}
	info, err := os.Stat(path)
	if err != nil {
		return res, err
	}
	res.SpillBytes = info.Size()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return res, err
	}
	srv := &http.Server{Handler: w}
	go srv.Serve(ln)
	defer srv.Close()
	url := "http://" + ln.Addr().String() + cluster.ShufflePath("bench", 0, 0, 0)

	fetch := func() error {
		resp, err := http.Get(url)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("shuffle fetch returned %d", resp.StatusCode)
		}
		h, got, err := kv.ReadSpill(resp.Body)
		if err != nil {
			return err
		}
		if h.SourceCount != sourceCount || len(got) != pairs {
			return fmt.Errorf("kv-count validation failed: %d/%d pairs, annotation %d want %d",
				len(got), pairs, h.SourceCount, sourceCount)
		}
		return nil
	}
	for i := 0; i < 3; i++ { // warm up connections and page cache
		if err := fetch(); err != nil {
			return res, err
		}
	}
	start := time.Now()
	for i := 0; i < fetches; i++ {
		if err := fetch(); err != nil {
			return res, err
		}
	}
	elapsed := time.Since(start)
	res.NsPerFetch = float64(elapsed.Nanoseconds()) / float64(fetches)
	res.MBPerSec = float64(res.SpillBytes) * float64(fetches) / elapsed.Seconds() / (1 << 20)
	return res, nil
}

// shuffleRunStats is one mode's half of the shuffle head-to-head.
type shuffleRunStats struct {
	TotalMS         float64 `json:"total_ms"`
	FetchWallMS     float64 `json:"fetch_wall_ms"` // Σ sidrd_shuffle_fetch_seconds
	ShuffleRequests int64   `json:"shuffle_requests"`
	BatchRequests   int64   `json:"batch_requests"`
	Connections     int64   `json:"connections"`
	ShuffleBytes    int64   `json:"shuffle_bytes"`
	Dials           int64   `json:"dials"`
}

// shuffleHeadToHead compares the batched and per-spill shuffle paths on
// the same clustered job: identical plan, dataset, workers and seeds,
// differing only in CoordinatorConfig.DisableBatchFetch.
type shuffleHeadToHead struct {
	Rows       int64           `json:"rows"`
	Workers    int             `json:"workers"`
	Reducers   int             `json:"reducers"`
	Batched    shuffleRunStats `json:"batched"`
	PerSpill   shuffleRunStats `json:"per_spill"`
	Identical  bool            `json:"outputs_identical"`
	SpeedupPct float64         `json:"fetch_wall_speedup_pct"`
}

func (r shuffleHeadToHead) Format() string {
	return fmt.Sprintf("rows=%d workers=%d reducers=%d: batched %d reqs / %.1fms fetch wall vs per-spill %d reqs / %.1fms (%.0f%% less fetch wall, identical=%v)",
		r.Rows, r.Workers, r.Reducers,
		r.Batched.ShuffleRequests, r.Batched.FetchWallMS,
		r.PerSpill.ShuffleRequests, r.PerSpill.FetchWallMS,
		r.SpeedupPct, r.Identical)
}

// shuffleOutputs flattens a clustered result for cross-run comparison.
func shuffleOutputs(res *cluster.JobResult) ([]coords.Coord, [][]float64) {
	var keys []coords.Coord
	var vals [][]float64
	for _, out := range res.Outputs {
		keys = append(keys, out.Keys...)
		vals = append(vals, out.Values...)
	}
	return keys, vals
}

// shuffleHeadToHeadRun executes the job once in the given mode on a
// fresh cluster (fresh workers, spill dirs and metrics registry, so
// nothing leaks between modes) and extracts the shuffle accounting.
func shuffleHeadToHeadRun(seed int64, shape []int64, splitPoints int64, reducers, workers int, disableBatch bool) (shuffleRunStats, *cluster.JobResult, error) {
	var stats shuffleRunStats
	reg := metrics.New()
	coord := cluster.NewCoordinator(cluster.CoordinatorConfig{
		HeartbeatTimeout:  30 * time.Second,
		Metrics:           reg,
		Seed:              seed,
		DisableBatchFetch: disableBatch,
	})
	defer coord.Close()

	var cleanups []func()
	defer func() {
		for _, fn := range cleanups {
			fn()
		}
	}()
	for i := 0; i < workers; i++ {
		dir, err := os.MkdirTemp("", "sidrbench-shuffle-*")
		if err != nil {
			return stats, nil, err
		}
		cleanups = append(cleanups, func() { os.RemoveAll(dir) })
		w, err := cluster.NewWorker(cluster.WorkerConfig{
			Name:     fmt.Sprintf("bench-w%d", i),
			SpillDir: dir,
		})
		if err != nil {
			return stats, nil, err
		}
		cleanups = append(cleanups, func() { w.Close() })
		srv := httptest.NewServer(w)
		cleanups = append(cleanups, srv.Close)
		if err := coord.Register(fmt.Sprintf("bench-w%d", i), srv.URL); err != nil {
			return stats, nil, err
		}
	}

	ex := exec.New(4)
	defer ex.Close()
	start := time.Now()
	res, err := coord.Run(context.Background(), cluster.JobSpec{
		Plan: cluster.JobPlan{
			Query: fmt.Sprintf("avg temp[0,0,0 : %d,%d,%d] es {%d,%d,%d}",
				shape[0], shape[1], shape[2], shape[0], shape[1]/8, shape[2]/8),
			Engine:      "sidr",
			Reducers:    reducers,
			SplitPoints: splitPoints,
		},
		Dataset: cluster.DatasetSpec{
			Kind: "synthetic", Generator: "temperature",
			Seed: seed, Shape: shape,
		},
		Exec: ex,
	})
	if err != nil {
		return stats, nil, err
	}
	stats.TotalMS = float64(time.Since(start)) / float64(time.Millisecond)
	stats.FetchWallMS = reg.Histogram("sidrd_shuffle_fetch_seconds", nil).Sum() * 1000
	stats.ShuffleRequests = res.Counters.ShuffleRequests
	stats.BatchRequests = res.Counters.BatchRequests
	stats.Connections = res.Counters.Connections
	stats.ShuffleBytes = res.Counters.ShuffleBytes
	stats.Dials = reg.Counter("sidrd_shuffle_dials_total").Value()
	return stats, res, nil
}

// shuffleExperiment is the batched-vs-per-spill head-to-head: ≥10M
// source rows spread over real loopback workers, the same query run
// through both shuffle paths, outputs required byte-identical. The
// batched path must need no more than one request per (reduce, worker)
// pair; per-spill needs Σ|I_ℓ|.
func shuffleExperiment(seed int64, rows int64) (shuffleHeadToHead, error) {
	const workers, reducers = 3, 16
	// Depth scales to the requested row count over a 512×512 base plane.
	depth := (rows + 512*512 - 1) / (512 * 512)
	if depth < 1 {
		depth = 1
	}
	shape := []int64{depth, 512, 512}
	total := shape[0] * shape[1] * shape[2]
	splitPoints := total / 64 // ~64 splits

	r := shuffleHeadToHead{Rows: total, Workers: workers, Reducers: reducers}
	var err error
	var bres, pres *cluster.JobResult
	if r.Batched, bres, err = shuffleHeadToHeadRun(seed, shape, splitPoints, reducers, workers, false); err != nil {
		return r, fmt.Errorf("batched run: %w", err)
	}
	if r.PerSpill, pres, err = shuffleHeadToHeadRun(seed, shape, splitPoints, reducers, workers, true); err != nil {
		return r, fmt.Errorf("per-spill run: %w", err)
	}
	bk, bv := shuffleOutputs(bres)
	pk, pv := shuffleOutputs(pres)
	r.Identical = reflect.DeepEqual(bk, pk) && reflect.DeepEqual(bv, pv)
	if !r.Identical {
		return r, fmt.Errorf("batched and per-spill outputs differ")
	}
	if r.PerSpill.FetchWallMS > 0 {
		r.SpeedupPct = (r.PerSpill.FetchWallMS - r.Batched.FetchWallMS) / r.PerSpill.FetchWallMS * 100
	}
	if maxReqs := int64(reducers * workers); r.Batched.ShuffleRequests > maxReqs {
		return r, fmt.Errorf("batched path made %d requests, want ≤ reduces×workers = %d",
			r.Batched.ShuffleRequests, maxReqs)
	}
	return r, nil
}
