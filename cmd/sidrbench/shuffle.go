package main

import (
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"sidr/internal/cluster"
	"sidr/internal/coords"
	"sidr/internal/kv"
)

// shuffleMicroResult is the networked-shuffle micro-benchmark: one
// partition+ keyblock spill written with the kv codec, then fetched
// repeatedly from a real cluster.Worker shuffle endpoint over loopback
// HTTP, with the kv-count annotation validated on every fetch — the
// exact per-dependency fetch path a clustered Reduce task performs.
type shuffleMicroResult struct {
	Pairs      int     `json:"pairs"`
	SpillBytes int64   `json:"spill_bytes"`
	Fetches    int     `json:"fetches"`
	NsPerFetch float64 `json:"ns_per_fetch"`
	MBPerSec   float64 `json:"mb_per_s"`
}

func (r shuffleMicroResult) Format() string {
	return fmt.Sprintf("%d pairs (%d B spill), %d fetches: %.0f ns/fetch, %.1f MB/s",
		r.Pairs, r.SpillBytes, r.Fetches, r.NsPerFetch, r.MBPerSec)
}

// shuffleMicro writes one spill and times fetch+decode+validate round
// trips against the worker's shuffle handler on a loopback listener.
func shuffleMicro(pairs, fetches int) (shuffleMicroResult, error) {
	res := shuffleMicroResult{Pairs: pairs, Fetches: fetches}
	dir, err := os.MkdirTemp("", "sidrbench-shuffle-*")
	if err != nil {
		return res, err
	}
	defer os.RemoveAll(dir)
	w, err := cluster.NewWorker(cluster.WorkerConfig{Name: "bench", SpillDir: dir})
	if err != nil {
		return res, err
	}
	defer w.Close()

	// One sorted spill with aggregate values plus a few samples each, to
	// exercise both fixed and variable-length parts of the codec.
	ps := make([]kv.Pair, pairs)
	for i := range ps {
		x := float64(i%97) * 0.5
		ps[i] = kv.Pair{
			Key: coords.NewCoord(int64(i), 0, 0),
			Value: kv.Value{
				Sum: x, SumSq: x * x, Min: x, Max: x, Count: 1,
				Samples: []float64{x, x + 1, x + 2, x + 3},
			},
		}
	}
	sourceCount := int64(pairs)
	// The worker serves spills from its documented on-disk layout:
	// spillDir/{job}/{split}-{attempt}/kb-{l}.spill.
	path := filepath.Join(dir, "bench", "0-0", "kb-0.spill")
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return res, err
	}
	f, err := os.Create(path)
	if err != nil {
		return res, err
	}
	if err := kv.WriteSpill(f, 3, sourceCount, ps); err != nil {
		f.Close()
		return res, err
	}
	if err := f.Close(); err != nil {
		return res, err
	}
	info, err := os.Stat(path)
	if err != nil {
		return res, err
	}
	res.SpillBytes = info.Size()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return res, err
	}
	srv := &http.Server{Handler: w}
	go srv.Serve(ln)
	defer srv.Close()
	url := "http://" + ln.Addr().String() + cluster.ShufflePath("bench", 0, 0, 0)

	fetch := func() error {
		resp, err := http.Get(url)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("shuffle fetch returned %d", resp.StatusCode)
		}
		h, got, err := kv.ReadSpill(resp.Body)
		if err != nil {
			return err
		}
		if h.SourceCount != sourceCount || len(got) != pairs {
			return fmt.Errorf("kv-count validation failed: %d/%d pairs, annotation %d want %d",
				len(got), pairs, h.SourceCount, sourceCount)
		}
		return nil
	}
	for i := 0; i < 3; i++ { // warm up connections and page cache
		if err := fetch(); err != nil {
			return res, err
		}
	}
	start := time.Now()
	for i := 0; i < fetches; i++ {
		if err := fetch(); err != nil {
			return res, err
		}
	}
	elapsed := time.Since(start)
	res.NsPerFetch = float64(elapsed.Nanoseconds()) / float64(fetches)
	res.MBPerSec = float64(res.SpillBytes) * float64(fetches) / elapsed.Seconds() / (1 << 20)
	return res, nil
}
