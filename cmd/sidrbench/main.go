// Command sidrbench regenerates every table and figure in the paper's
// evaluation (§4). Each experiment prints the same rows/series the paper
// reports; -exp selects one, -curves dumps full completion curves for
// plotting.
//
// Usage:
//
//	sidrbench [-exp all|fig9|fig10|fig11|fig12|fig13|table2|table3|partmicro]
//	          [-seed N] [-runs N] [-curves] [-dir DIR]
package main

import (
	"flag"
	"fmt"
	"os"

	"sidr/internal/experiments"
	"sidr/internal/trace"
)

func main() {
	var (
		exp    = flag.String("exp", "all", "experiment to run (all, fig9, fig10, fig11, fig12, fig13, table2, table3, partmicro, failures)")
		seed   = flag.Int64("seed", 1, "simulation seed")
		runs   = flag.Int("runs", 10, "repetitions for averaged experiments (fig12, table2, partmicro)")
		curves = flag.Bool("curves", false, "dump full completion curves, not just summaries")
		dir    = flag.String("dir", os.TempDir(), "scratch directory for file-IO experiments")
		micro  = flag.Int("micropairs", experiments.PartitionMicroPairs, "pair count for the partition micro-benchmark")
	)
	flag.Usage = func() {
		fmt.Fprintln(flag.CommandLine.Output(), "usage: sidrbench [flags]")
		fmt.Fprintln(flag.CommandLine.Output(), "cluster experiments run on the simulator; in-process engine runs")
		fmt.Fprintln(flag.CommandLine.Output(), "(see sidrquery, sidrd) default Map/Reduce workers to GOMAXPROCS")
		flag.PrintDefaults()
	}
	flag.Parse()

	run := func(name string, fn func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "sidrbench: %s: %v\n", name, err)
			os.Exit(1)
		}
	}

	cfg := experiments.TestbedConfig(*seed)

	printCurves := func(results []experiments.CurveResult) {
		for _, cr := range results {
			fmt.Println("  " + cr.Format())
		}
		if *curves {
			for _, cr := range results {
				fmt.Print(cr.Result.Trace.SeriesOf(trace.Map).Render(cr.Label + " [maps]"))
				fmt.Print(cr.Result.Trace.SeriesOf(trace.Reduce).Render(cr.Label + " [reduces]"))
			}
		}
	}

	run("fig9", func() error {
		fmt.Println("Figure 9: Query 1 task completion, Hadoop vs SciHadoop vs SIDR (22 reduces)")
		rs, err := experiments.Figure9(cfg)
		if err != nil {
			return err
		}
		printCurves(rs)
		return nil
	})
	run("fig10", func() error {
		fmt.Println("Figure 10: Query 1, SIDR reduce-count sweep vs SciHadoop")
		rs, err := experiments.Figure10(cfg)
		if err != nil {
			return err
		}
		printCurves(rs)
		return nil
	})
	run("fig11", func() error {
		fmt.Println("Figure 11: Query 2 filter, SIDR reduce-count sweep vs SciHadoop")
		rs, err := experiments.Figure11(cfg)
		if err != nil {
			return err
		}
		printCurves(rs)
		return nil
	})
	run("fig12", func() error {
		fmt.Printf("Figure 12: SIDR completion-time variance over %d runs\n", *runs)
		rows, err := experiments.Figure12(cfg, *runs)
		if err != nil {
			return err
		}
		for _, r := range rows {
			fmt.Println("  " + r.Format())
		}
		return nil
	})
	run("fig13", func() error {
		fmt.Println("Figure 13: intermediate key skew, stock modulo vs SIDR (22 reduces)")
		rs, err := experiments.Figure13(cfg)
		if err != nil {
			return err
		}
		printCurves(rs)
		if len(rs) == 2 {
			speedup := (rs[0].Makespan - rs[1].Makespan) / rs[0].Makespan * 100
			fmt.Printf("  SIDR completes %.0f%% faster than stock\n", speedup)
		}
		stock, sidr, err := experiments.Figure13Skew()
		if err != nil {
			return err
		}
		fmt.Printf("  load imbalance, stock:      %s\n", stock.Format())
		fmt.Printf("  load imbalance, partition+: %s\n", sidr.Format())
		return nil
	})
	run("table2", func() error {
		fmt.Println("Table 2: per-reduce output write time and size scaling (real file IO)")
		t2 := experiments.DefaultTable2Config(*dir)
		t2.Runs = *runs
		rows, err := experiments.Table2(t2)
		if err != nil {
			return err
		}
		for _, r := range rows {
			fmt.Println("  " + r.Format())
		}
		return nil
	})
	run("table3", func() error {
		fmt.Println("Table 3: Map/Reduce shuffle connection scaling")
		rows, err := experiments.Table3()
		if err != nil {
			return err
		}
		for _, r := range rows {
			fmt.Println("  " + r.Format())
		}
		return nil
	})
	run("failures", func() error {
		fmt.Println("§6 failure-recovery study: persist-and-refetch vs no-persist-and-recompute (Query 1, SIDR)")
		for _, reducers := range []int{22, 176} {
			rows, err := experiments.FailureStudy(cfg, reducers, []float64{0, 0.02, 0.05, 0.1, 0.2})
			if err != nil {
				return err
			}
			fmt.Printf("  %d reducers:\n", reducers)
			for _, r := range rows {
				fmt.Println("    " + r.Format())
			}
		}
		return nil
	})
	run("partmicro", func() error {
		fmt.Println("§4.5: partition function micro-benchmark")
		res, err := experiments.PartitionMicro(*micro, *runs, 22)
		if err != nil {
			return err
		}
		fmt.Println("  " + res.Format())
		return nil
	})
}
