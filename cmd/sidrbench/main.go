// Command sidrbench regenerates every table and figure in the paper's
// evaluation (§4). Each experiment prints the same rows/series the paper
// reports; -exp selects one, -curves dumps full completion curves for
// plotting.
//
// -json FILE instead writes a machine-readable benchmark summary
// (BENCH_PR*.json): first-result and total times for the Figure 9/10
// cluster runs, wall-clock of a real in-process engine query, the
// partition+ micro-benchmark's allocation profile, and the chaos
// experiment's fault-recovery latencies — one snapshot per PR so the
// perf trajectory is tracked across the repo's history.
//
// Usage:
//
//	sidrbench [-exp all|fig9|fig10|fig11|fig12|fig13|table2|table3|partmicro|shufflemicro|shuffle|failures|chaos|churn|prune|serve|join]
//	          [-seed N] [-runs N] [-curves] [-dir DIR]
//	sidrbench -json BENCH_PR7.json
//	sidrbench -exp join -joinscale 0.5 -json BENCH_PR9.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"sidr"
	"sidr/internal/experiments"
	"sidr/internal/trace"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment to run (all, fig9, fig10, fig11, fig12, fig13, table2, table3, partmicro, shufflemicro, shuffle, failures, chaos, churn, prune, serve, join)")
		seed     = flag.Int64("seed", 1, "simulation seed")
		runs     = flag.Int("runs", 10, "repetitions for averaged experiments (fig12, table2, partmicro)")
		curves   = flag.Bool("curves", false, "dump full completion curves, not just summaries")
		dir      = flag.String("dir", os.TempDir(), "scratch directory for file-IO experiments")
		micro    = flag.Int("micropairs", experiments.PartitionMicroPairs, "pair count for the partition micro-benchmark")
		shufPair = flag.Int("shufflepairs", 50000, "pair count for the shuffle micro-benchmark spill")
		shufN    = flag.Int("shufflefetches", 200, "timed fetches in the shuffle micro-benchmark")
		shufRows = flag.Int64("shufflerows", 40*512*512, "source rows for the batched-vs-per-spill shuffle head-to-head")
		srvCli   = flag.Int("serveclients", 1000, "concurrent streaming clients in the serving-tier experiment")
		srvReqs  = flag.Int("servereqs", 3, "requests per client in the serving-tier mix phase")
		srvUniq  = flag.Int("serveuniques", 64, "distinct queries in the serving-tier zipf mix")
		joinScl  = flag.Float64("joinscale", 1.0, "input-extent scale for the structural-join skew experiment (CI runs reduced)")
		jsonTo   = flag.String("json", "", "write a machine-readable benchmark summary to this file and exit")
	)
	flag.Usage = func() {
		fmt.Fprintln(flag.CommandLine.Output(), "usage: sidrbench [flags]")
		fmt.Fprintln(flag.CommandLine.Output(), "cluster experiments run on the simulator; in-process engine runs")
		fmt.Fprintln(flag.CommandLine.Output(), "(see sidrquery, sidrd) default Map/Reduce workers to GOMAXPROCS")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *jsonTo != "" {
		if err := writeBenchJSON(*jsonTo, *exp, *seed, *micro, *shufPair, *shufN, *shufRows, *srvCli, *srvReqs, *srvUniq, *joinScl); err != nil {
			fmt.Fprintf(os.Stderr, "sidrbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *jsonTo)
		return
	}

	run := func(name string, fn func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "sidrbench: %s: %v\n", name, err)
			os.Exit(1)
		}
	}

	cfg := experiments.TestbedConfig(*seed)

	printCurves := func(results []experiments.CurveResult) {
		for _, cr := range results {
			fmt.Println("  " + cr.Format())
		}
		if *curves {
			for _, cr := range results {
				fmt.Print(cr.Result.Trace.SeriesOf(trace.Map).Render(cr.Label + " [maps]"))
				fmt.Print(cr.Result.Trace.SeriesOf(trace.Reduce).Render(cr.Label + " [reduces]"))
			}
		}
	}

	run("fig9", func() error {
		fmt.Println("Figure 9: Query 1 task completion, Hadoop vs SciHadoop vs SIDR (22 reduces)")
		rs, err := experiments.Figure9(cfg)
		if err != nil {
			return err
		}
		printCurves(rs)
		return nil
	})
	run("fig10", func() error {
		fmt.Println("Figure 10: Query 1, SIDR reduce-count sweep vs SciHadoop")
		rs, err := experiments.Figure10(cfg)
		if err != nil {
			return err
		}
		printCurves(rs)
		return nil
	})
	run("fig11", func() error {
		fmt.Println("Figure 11: Query 2 filter, SIDR reduce-count sweep vs SciHadoop")
		rs, err := experiments.Figure11(cfg)
		if err != nil {
			return err
		}
		printCurves(rs)
		return nil
	})
	run("fig12", func() error {
		fmt.Printf("Figure 12: SIDR completion-time variance over %d runs\n", *runs)
		rows, err := experiments.Figure12(cfg, *runs)
		if err != nil {
			return err
		}
		for _, r := range rows {
			fmt.Println("  " + r.Format())
		}
		return nil
	})
	run("fig13", func() error {
		fmt.Println("Figure 13: intermediate key skew, stock modulo vs SIDR (22 reduces)")
		rs, err := experiments.Figure13(cfg)
		if err != nil {
			return err
		}
		printCurves(rs)
		if len(rs) == 2 {
			speedup := (rs[0].Makespan - rs[1].Makespan) / rs[0].Makespan * 100
			fmt.Printf("  SIDR completes %.0f%% faster than stock\n", speedup)
		}
		stock, sidr, err := experiments.Figure13Skew()
		if err != nil {
			return err
		}
		fmt.Printf("  load imbalance, stock:      %s\n", stock.Format())
		fmt.Printf("  load imbalance, partition+: %s\n", sidr.Format())
		return nil
	})
	run("table2", func() error {
		fmt.Println("Table 2: per-reduce output write time and size scaling (real file IO)")
		t2 := experiments.DefaultTable2Config(*dir)
		t2.Runs = *runs
		rows, err := experiments.Table2(t2)
		if err != nil {
			return err
		}
		for _, r := range rows {
			fmt.Println("  " + r.Format())
		}
		return nil
	})
	run("table3", func() error {
		fmt.Println("Table 3: Map/Reduce shuffle connection scaling")
		rows, err := experiments.Table3()
		if err != nil {
			return err
		}
		for _, r := range rows {
			fmt.Println("  " + r.Format())
		}
		return nil
	})
	run("failures", func() error {
		fmt.Println("§6 failure-recovery study: persist-and-refetch vs no-persist-and-recompute (Query 1, SIDR)")
		for _, reducers := range []int{22, 176} {
			rows, err := experiments.FailureStudy(cfg, reducers, []float64{0, 0.02, 0.05, 0.1, 0.2})
			if err != nil {
				return err
			}
			fmt.Printf("  %d reducers:\n", reducers)
			for _, r := range rows {
				fmt.Println("    " + r.Format())
			}
		}
		return nil
	})
	run("partmicro", func() error {
		fmt.Println("§4.5: partition function micro-benchmark")
		res, err := experiments.PartitionMicro(*micro, *runs, 22)
		if err != nil {
			return err
		}
		fmt.Println("  " + res.Format())
		return nil
	})
	run("shufflemicro", func() error {
		fmt.Println("networked-shuffle micro-benchmark: spill write → loopback HTTP fetch → kv-count validate")
		res, err := shuffleMicro(*shufPair, *shufN)
		if err != nil {
			return err
		}
		fmt.Println("  " + res.Format())
		return nil
	})
	run("shuffle", func() error {
		fmt.Println("shuffle head-to-head: batched streaming fetch vs per-spill (real workers, loopback)")
		r, err := shuffleExperiment(*seed, *shufRows)
		if err != nil {
			return err
		}
		fmt.Println("  " + r.Format())
		return nil
	})
	run("chaos", func() error {
		fmt.Println("chaos experiment: clustered query with 0 and 1 injected worker deaths (real workers, loopback)")
		rs, err := chaosExperiment(*seed)
		if err != nil {
			return err
		}
		for _, r := range rs {
			fmt.Println("  " + r.Format())
		}
		return nil
	})
	run("churn", func() error {
		fmt.Println("churn experiment: post-Map worker death, replica re-fetch vs split re-execution (real workers, loopback)")
		r, err := churnExperiment(*seed)
		if err != nil {
			return err
		}
		for _, cr := range r.Runs {
			fmt.Println("  " + cr.Format())
		}
		fmt.Printf("  dispatch locality ratio: %.2f\n", r.LocalityRatio)
		return nil
	})
	run("prune", func() error {
		fmt.Println("structural-index pruning: selective filter, indexed vs unindexed (real engine)")
		r, err := pruneExperiment(*runs)
		if err != nil {
			return err
		}
		fmt.Println("  " + r.Format())
		return nil
	})
	run("serve", func() error {
		fmt.Printf("serving tier: %d streaming clients, zipf mix over %d queries + identical-query burst\n", *srvCli, *srvUniq)
		r, err := serveExperiment(*seed, *srvCli, *srvReqs, *srvUniq)
		if err != nil {
			return err
		}
		fmt.Println("  " + r.Format())
		return nil
	})
	run("join", func() error {
		fmt.Println("structural join: zipf-skewed side B, re-tiling on vs off (real engine)")
		r, err := joinExperiment(*seed, *joinScl, *runs)
		if err != nil {
			return err
		}
		fmt.Println("  " + r.Format())
		return nil
	})
}

// benchCurve is one Figure 9/10 curve's headline numbers.
type benchCurve struct {
	Label          string  `json:"label"`
	FirstResultSec float64 `json:"first_result_s"`
	TotalSec       float64 `json:"total_s"`
	MapFracAtFirst float64 `json:"map_frac_at_first"`
}

// benchReport is the BENCH_PR*.json schema: the cross-PR perf snapshot.
// sidrbench/2 added the networked-shuffle micro-benchmark; sidrbench/3
// added the chaos experiment (fault-recovery latency on real workers);
// sidrbench/4 added the structural-index pruning experiment;
// sidrbench/5 added the batched-vs-per-spill shuffle head-to-head;
// sidrbench/6 added the serving-tier experiment (result cache, query
// collapsing, per-path latency percentiles under 1000 streaming
// clients); sidrbench/7 added the structural-join skew experiment;
// sidrbench/8 adds the churn experiment (post-Map worker death:
// replica re-fetch vs split re-execution, plus dispatch locality).
type benchReport struct {
	Schema string       `json:"schema"`
	Seed   int64        `json:"seed"`
	Fig9   []benchCurve `json:"fig9"`
	Fig10  []benchCurve `json:"fig10"`
	Engine struct {
		Query           string  `json:"query"`
		Rows            int     `json:"rows"`
		FirstResultMS   float64 `json:"first_result_ms"`
		ElapsedMS       float64 `json:"elapsed_ms"`
		TasksDispatched int64   `json:"tasks_dispatched"`
	} `json:"engine"`
	PartitionMicro struct {
		Pairs       int     `json:"pairs"`
		NsPerOp     float64 `json:"ns_per_op"`
		AllocsPerOp float64 `json:"allocs_per_op"`
		BytesPerOp  float64 `json:"bytes_per_op"`
	} `json:"partition_micro"`
	ShuffleMicro shuffleMicroResult `json:"shuffle_micro"`
	Shuffle      shuffleHeadToHead  `json:"shuffle"`
	Chaos        []chaosResult      `json:"chaos"`
	Churn        churnResult        `json:"churn"`
	Prune        pruneResult        `json:"prune"`
	Serve        serveResult        `json:"serve"`
	Join         joinResult         `json:"join"`
}

func toBenchCurves(rs []experiments.CurveResult) []benchCurve {
	out := make([]benchCurve, len(rs))
	for i, cr := range rs {
		out[i] = benchCurve{
			Label:          cr.Label,
			FirstResultSec: cr.FirstResult,
			TotalSec:       cr.Makespan,
			MapFracAtFirst: cr.MapFracAtFirst,
		}
	}
	return out
}

// writeBenchJSON runs the headline experiments and one real in-process
// engine query, and writes the summary file. exp narrows the snapshot
// to one experiment's section (-exp join -json ... in CI); "all" fills
// every section.
func writeBenchJSON(path, exp string, seed int64, microPairs, shufflePairs, shuffleFetches int, shuffleRows int64, serveClients, serveReqs, serveUniques int, joinScale float64) error {
	rep := benchReport{Schema: "sidrbench/8", Seed: seed}
	cfg := experiments.TestbedConfig(seed)
	want := func(name string) bool { return exp == "all" || exp == name }

	if want("fig9") {
		rs, err := experiments.Figure9(cfg)
		if err != nil {
			return err
		}
		rep.Fig9 = toBenchCurves(rs)
	}
	if want("fig10") {
		rs, err := experiments.Figure10(cfg)
		if err != nil {
			return err
		}
		rep.Fig10 = toBenchCurves(rs)
	}

	if want("engine") {
		// A real engine run (not simulated): SIDR engine, dependency
		// barrier, streamed partials — the serving path's wall-clock.
		const engineQuery = "avg v[0,0 : 512,512] es {16,16}"
		ds, err := sidr.Synthetic([]int64{512, 512}, func(k []int64) float64 {
			return float64(k[0]^k[1]) * 0.25
		})
		if err != nil {
			return err
		}
		defer ds.Close()
		q, err := sidr.ParseQuery(engineQuery)
		if err != nil {
			return err
		}
		res, err := sidr.Run(ds, q, sidr.RunOptions{Engine: sidr.SIDR, Reducers: 8})
		if err != nil {
			return err
		}
		rep.Engine.Query = engineQuery
		rep.Engine.Rows = len(res.Keys)
		rep.Engine.FirstResultMS = float64(res.FirstResult) / float64(time.Millisecond)
		rep.Engine.ElapsedMS = float64(res.Elapsed) / float64(time.Millisecond)
		rep.Engine.TasksDispatched = res.TasksDispatched
	}

	if want("partmicro") {
		allocs, bytes, ns, err := experiments.PartitionMicroAllocs(microPairs, 22)
		if err != nil {
			return err
		}
		rep.PartitionMicro.Pairs = microPairs
		rep.PartitionMicro.NsPerOp = ns
		rep.PartitionMicro.AllocsPerOp = allocs
		rep.PartitionMicro.BytesPerOp = bytes
	}

	var err error
	if want("shufflemicro") {
		if rep.ShuffleMicro, err = shuffleMicro(shufflePairs, shuffleFetches); err != nil {
			return err
		}
	}

	if want("shuffle") {
		if rep.Shuffle, err = shuffleExperiment(seed, shuffleRows); err != nil {
			return err
		}
	}

	if want("chaos") {
		if rep.Chaos, err = chaosExperiment(seed); err != nil {
			return err
		}
	}

	if want("churn") {
		if rep.Churn, err = churnExperiment(seed); err != nil {
			return err
		}
	}

	if want("prune") {
		if rep.Prune, err = pruneExperiment(5); err != nil {
			return err
		}
	}

	if want("serve") {
		if rep.Serve, err = serveExperiment(seed, serveClients, serveReqs, serveUniques); err != nil {
			return err
		}
	}

	if want("join") {
		if rep.Join, err = joinExperiment(seed, joinScale, 3); err != nil {
			return err
		}
	}

	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
