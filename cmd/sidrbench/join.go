package main

import (
	"fmt"
	"math"
	"reflect"
	"time"

	"sidr"
	"sidr/internal/coords"
	"sidr/internal/datagen"
	"sidr/internal/skew"
)

// joinRun is one configuration's outcome: wall-clock plus the imbalance
// statistics of the plan's per-keyblock estimated loads.
type joinRun struct {
	ElapsedMS     float64 `json:"elapsed_ms"`
	FirstResultMS float64 `json:"first_result_ms"`
	Keyblocks     int     `json:"keyblocks"`
	Starved       int     `json:"starved"`
	MaxLoad       int64   `json:"max_load"`
	MaxOverMean   float64 `json:"max_over_mean"`
	CV            float64 `json:"cv"`
	Gini          float64 `json:"gini"`
}

// joinResult is the structural-join skew experiment's summary: the same
// zipf-skewed join run with skew-adaptive re-tiling on and off.
type joinResult struct {
	Query         string  `json:"query"`
	Shape         []int64 `json:"shape"`
	ZipfSkew      float64 `json:"zipf_skew"`
	Reducers      int     `json:"reducers"`
	MaxSkew       int64   `json:"max_skew"`
	Rows          int     `json:"rows"`
	Naive         joinRun `json:"naive"`
	Retiled       joinRun `json:"retiled"`
	SkewReduction float64 `json:"skew_reduction"`
	Speedup       float64 `json:"speedup"`
	Identical     bool    `json:"identical"`
}

func (r joinResult) Format() string {
	return fmt.Sprintf("%d rows  naive max/mean=%.2f cv=%.2f %.1fms → retiled max/mean=%.2f cv=%.2f %.1fms  (skew ÷%.2f, %.2fx)  identical=%v",
		r.Rows, r.Naive.MaxOverMean, r.Naive.CV, r.Naive.ElapsedMS,
		r.Retiled.MaxOverMean, r.Retiled.CV, r.Retiled.ElapsedMS,
		r.SkewReduction, r.Speedup, r.Identical)
}

// joinExperiment joins a dense integer side A against a zipf-skewed side
// B, whose data presence collapses down the leading dimension, so the
// value-dependent load piles into the low keyblocks. The same query runs
// with re-tiling disabled (naive partition+ layout) and enabled
// (heavy keyblocks split into sub-ranges and SharesSkew shares), each
// `runs` times keeping the fastest, and the experiment asserts the two
// configurations returned byte-identical results and that re-tiling
// strictly reduced max-over-mean keyblock load. scale scales the leading
// extent (CI runs reduced).
func joinExperiment(seed int64, scale float64, runs int) (joinResult, error) {
	if runs < 1 {
		runs = 1
	}
	if scale <= 0 {
		scale = 1.0
	}
	lead := int64(256 * scale)
	lead -= lead % 16
	if lead < 32 {
		lead = 32
	}
	shape := []int64{lead, 128}
	const zipfSkew = 1.4
	const reducers = 8
	// A tight skew tolerance: the load bound falls back to the per-reducer
	// mean, so sampled hot spots actually trigger re-tiling (the default
	// partition+ tolerance is sized for key counts, not sampled pairs).
	const maxSkew = 16

	genA, genB := datagen.Integers(seed), datagen.Zipf(seed+1, zipfSkew)
	dsA, err := sidr.Synthetic(shape, func(k []int64) float64 { return genA(coords.Coord(k)) })
	if err != nil {
		return joinResult{}, err
	}
	dsB, err := sidr.Synthetic(shape, func(k []int64) float64 { return genB(coords.Coord(k)) })
	if err != nil {
		return joinResult{}, err
	}

	queryText := fmt.Sprintf("join javg a[0,0 : %d,%d] es {16,16} with b[0,0 : %d,%d] es {16,16}",
		shape[0], shape[1], shape[0], shape[1])
	q, err := sidr.ParseQuery(queryText)
	if err != nil {
		return joinResult{}, err
	}
	res := joinResult{Query: queryText, Shape: shape, ZipfSkew: zipfSkew, Reducers: reducers, MaxSkew: maxSkew}

	run := func(noRetile bool) (*sidr.Result, joinRun, error) {
		var best *sidr.Result
		jr := joinRun{ElapsedMS: math.Inf(1), FirstResultMS: math.Inf(1)}
		for i := 0; i < runs; i++ {
			r, err := sidr.RunJoin(dsA, dsB, q, sidr.RunOptions{
				Engine:       sidr.SIDR,
				Reducers:     reducers,
				MaxSkew:      maxSkew,
				NoJoinRetile: noRetile,
			})
			if err != nil {
				return nil, jr, err
			}
			if ms := float64(r.Elapsed) / float64(time.Millisecond); ms < jr.ElapsedMS {
				jr.ElapsedMS = ms
				best = r
			}
			if ms := float64(r.FirstResult) / float64(time.Millisecond); ms < jr.FirstResultMS {
				jr.FirstResultMS = ms
			}
		}
		s := skew.Summarize(best.KeyblockLoads)
		jr.Keyblocks = s.Keyblocks
		jr.Starved = s.Starved
		jr.MaxLoad = s.Max
		jr.MaxOverMean = s.MaxOverMean
		jr.CV = s.CV
		jr.Gini = s.Gini
		return best, jr, nil
	}

	naive, naiveRun, err := run(true)
	if err != nil {
		return joinResult{}, err
	}
	retiled, retiledRun, err := run(false)
	if err != nil {
		return joinResult{}, err
	}

	res.Naive = naiveRun
	res.Retiled = retiledRun
	res.Rows = len(retiled.Keys)
	if retiledRun.MaxOverMean > 0 {
		res.SkewReduction = naiveRun.MaxOverMean / retiledRun.MaxOverMean
	}
	if retiledRun.ElapsedMS > 0 {
		res.Speedup = naiveRun.ElapsedMS / retiledRun.ElapsedMS
	}
	res.Identical = reflect.DeepEqual(naive.Keys, retiled.Keys) &&
		reflect.DeepEqual(naive.Values, retiled.Values)
	if !res.Identical {
		return res, fmt.Errorf("re-tiled and naive join results diverge (%d vs %d rows)",
			len(retiled.Keys), len(naive.Keys))
	}
	if retiledRun.MaxOverMean >= naiveRun.MaxOverMean {
		return res, fmt.Errorf("re-tiling did not reduce keyblock skew: max/mean %.3f (naive) vs %.3f (retiled)",
			naiveRun.MaxOverMean, retiledRun.MaxOverMean)
	}
	return res, nil
}
