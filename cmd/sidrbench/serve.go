// Serving-tier load harness: drives a full in-process daemon stack
// (registry → job manager → HTTP server) with >=1000 concurrent
// streaming clients and a zipf-skewed query mix, and reports per-path
// latency percentiles — cold executions vs result-cache hits vs
// in-flight collapses — plus the executed-vs-served job counts that
// quantify how much work the serving tier absorbs.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"sidr/internal/cluster"
	"sidr/internal/jobs"
	"sidr/internal/metrics"
	"sidr/internal/server"
	"sidr/internal/wire"
)

// serveLatency summarises one serving path's request latencies
// (submit → terminal stream event, measured at the client).
type serveLatency struct {
	Count int     `json:"count"`
	P50MS float64 `json:"p50_ms"`
	P95MS float64 `json:"p95_ms"`
	P99MS float64 `json:"p99_ms"`
}

func summarize(durs []time.Duration) serveLatency {
	if len(durs) == 0 {
		return serveLatency{}
	}
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	pct := func(p float64) float64 {
		i := int(p * float64(len(durs)-1))
		return float64(durs[i]) / float64(time.Millisecond)
	}
	return serveLatency{Count: len(durs), P50MS: pct(0.50), P95MS: pct(0.95), P99MS: pct(0.99)}
}

// serveResult is the -exp serve / BENCH json form.
type serveResult struct {
	Clients        int   `json:"clients"`
	RequestsServed int64 `json:"requests_served"`
	JobsExecuted   int64 `json:"jobs_executed"`
	UniqueQueries  int   `json:"unique_queries"`
	Collapsed      int64 `json:"collapsed_followers"`
	CacheHits      int64 `json:"result_cache_hits"`
	Errors         int64 `json:"errors"`

	Cold                serveLatency `json:"cold"`
	Cached              serveLatency `json:"cached"`
	Collapse            serveLatency `json:"collapsed"`
	CachedVsColdSpeedup float64      `json:"cached_vs_cold_p50_speedup"`
	// MixWindowMS is the open-loop arrival window of the hot-mix phase;
	// requests fire at uniform-random offsets inside it.
	MixWindowMS float64 `json:"mix_window_ms"`

	// Burst is the collapse stress: every client submits the same fresh
	// query at once; JobsExecuted records how many actually ran.
	Burst struct {
		Requests     int   `json:"requests"`
		JobsExecuted int64 `json:"jobs_executed"`
		Collapsed    int64 `json:"collapsed_followers"`
	} `json:"burst"`
}

func (r serveResult) Format() string {
	return fmt.Sprintf("clients=%d served=%d executed=%d (%.1fx absorbed) errors=%d | cold n=%d p50=%.2fms p99=%.2fms | cached n=%d p50=%.3fms p99=%.3fms (%.0fx) | collapsed n=%d p50=%.2fms p99=%.2fms | burst %d->%d jobs (%d collapsed)",
		r.Clients, r.RequestsServed, r.JobsExecuted,
		float64(r.RequestsServed)/float64(max64(r.JobsExecuted, 1)), r.Errors,
		r.Cold.Count, r.Cold.P50MS, r.Cold.P99MS,
		r.Cached.Count, r.Cached.P50MS, r.Cached.P99MS, r.CachedVsColdSpeedup,
		r.Collapse.Count, r.Collapse.P50MS, r.Collapse.P99MS,
		r.Burst.Requests, r.Burst.JobsExecuted, r.Burst.Collapsed)
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// raiseNoFile lifts RLIMIT_NOFILE to its hard cap so >=1000 concurrent
// HTTP streams (two fds each: client and server side) fit; best-effort.
func raiseNoFile() {
	var lim syscall.Rlimit
	if err := syscall.Getrlimit(syscall.RLIMIT_NOFILE, &lim); err != nil {
		return
	}
	if lim.Cur < lim.Max {
		lim.Cur = lim.Max
		_ = syscall.Setrlimit(syscall.RLIMIT_NOFILE, &lim)
	}
}

// serveExperiment stands up the daemon stack and runs two phases:
// a zipf-skewed mix (cold + cached + collapsed all exercised) and an
// all-identical burst (pure collapse). Every request is a streaming
// client: submit, then ride the NDJSON stream to the terminal event.
func serveExperiment(seed int64, clients, reqsPerClient, uniques int) (serveResult, error) {
	raiseNoFile()
	var out serveResult
	out.Clients = clients
	out.UniqueQueries = uniques

	reg := metrics.New()
	registry := server.NewRegistry()
	if err := registry.AddGenerated("grid", cluster.DatasetSpec{
		Kind: "synthetic", Generator: "temperature", Shape: []int64{256, 256}, Seed: seed,
	}); err != nil {
		return out, err
	}
	// "slow" models an expensive query (I/O-bound or huge): ~100µs per
	// point. The burst phase runs against it so the leader's execution
	// window is wide enough for followers to attach — a query that
	// finishes in single-digit milliseconds leaves nothing to collapse
	// onto; late arrivals hit the result cache instead.
	if err := registry.AddSynthetic("slow", []int64{64, 64}, func(k []int64) float64 {
		time.Sleep(100 * time.Microsecond)
		return float64(k[0] ^ k[1])
	}); err != nil {
		return out, err
	}
	mgr, err := jobs.NewManager(jobs.Config{
		QueueDepth: uniques * 4,
		RetainJobs: -1, // keep all: clients stream jobs after they finish
		Datasets:   registry,
		Metrics:    reg,
	})
	if err != nil {
		return out, err
	}
	ts := httptest.NewServer(server.New(mgr, registry, reg, nil))
	defer ts.Close()

	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        clients * 2,
		MaxIdleConnsPerHost: clients * 2,
	}}

	// The query mix: distinct row extents make distinct canonical
	// queries; zipf skews popularity so hot queries cache/collapse while
	// the tail stays cold.
	queries := make([]string, uniques)
	for i := range queries {
		// 64-row slabs at distinct offsets: every entry canonicalises to a
		// distinct query, so each is its own cache/collapse key.
		off := int64(i) % 192
		queries[i] = fmt.Sprintf("avg v[%d,0 : %d,256] es {64,64}", off, off+64)
	}
	zipf := rand.NewZipf(rand.New(rand.NewSource(seed)), 1.2, 1, uint64(uniques-1))

	type sample struct {
		class string
		dur   time.Duration
	}
	var (
		mu      sync.Mutex
		samples []sample
		errs    atomic.Int64
	)

	// one streaming request: submit, classify from the snapshot, stream
	// to the terminal event, record the end-to-end latency.
	doRequest := func(dataset, query string) {
		start := time.Now()
		body, _ := json.Marshal(jobs.Request{Dataset: dataset, Query: query, Reducers: 4})
		resp, err := client.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader(body))
		if err != nil {
			errs.Add(1)
			return
		}
		if resp.StatusCode != http.StatusAccepted {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			errs.Add(1)
			return
		}
		var snap jobs.Snapshot
		if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
			resp.Body.Close()
			errs.Add(1)
			return
		}
		resp.Body.Close()

		class := "cold"
		switch {
		case snap.ResultHit:
			class = "cached"
		case snap.CollapsedInto != "":
			class = "collapsed"
		}

		sresp, err := client.Get(ts.URL + "/v1/jobs/" + snap.ID + "/stream")
		if err != nil {
			errs.Add(1)
			return
		}
		defer sresp.Body.Close()
		sc := bufio.NewScanner(sresp.Body)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		terminal := false
		for sc.Scan() {
			var ev wire.StreamEvent
			if json.Unmarshal(sc.Bytes(), &ev) != nil {
				continue
			}
			if ev.Type == wire.EventDone || ev.Type == wire.EventFailed || ev.Type == wire.EventCancelled {
				terminal = ev.Type == wire.EventDone
				break
			}
		}
		if !terminal {
			errs.Add(1)
			return
		}
		mu.Lock()
		samples = append(samples, sample{class: class, dur: time.Since(start)})
		mu.Unlock()
	}

	// Phase 1: the cold sweep — every unique query once, concurrently.
	// These executions populate the result cache and are the cold
	// latency samples.
	var wg sync.WaitGroup
	coldGate := make(chan struct{})
	for i := 0; i < uniques; i++ {
		wg.Add(1)
		go func(q string) {
			defer wg.Done()
			<-coldGate
			doRequest("grid", q)
		}(queries[i])
	}
	close(coldGate)
	wg.Wait()

	// Phase 2: the hot mix — every client concurrently, zipf-skewed over
	// the now-warm query set. Arrivals are open-loop: each request fires
	// at a uniform-random offset inside a window sized ~4ms per request,
	// so the measurement is steady-state serving latency at a sustained
	// arrival rate rather than a single synchronized thundering herd —
	// closed-loop hammering on a small machine measures scheduler
	// queueing, not the serving path. Each client draws its queries and
	// offsets up front (the zipf source is not goroutine-safe), then all
	// clients start together and hold their streams concurrently.
	window := 4 * time.Millisecond * time.Duration(clients*reqsPerClient)
	out.MixWindowMS = float64(window) / float64(time.Millisecond)
	rnd := rand.New(rand.NewSource(seed + 1))
	type timedReq struct {
		query string
		at    time.Duration
	}
	plans := make([][]timedReq, clients)
	for c := range plans {
		plans[c] = make([]timedReq, reqsPerClient)
		for r := range plans[c] {
			plans[c][r] = timedReq{
				query: queries[zipf.Uint64()],
				at:    time.Duration(rnd.Int63n(int64(window))),
			}
		}
		sort.Slice(plans[c], func(i, j int) bool { return plans[c][i].at < plans[c][j].at })
	}
	startGate := make(chan struct{})
	epoch := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(plan []timedReq) {
			defer wg.Done()
			<-startGate
			for _, tr := range plan {
				if d := time.Until(epoch.Add(tr.at)); d > 0 {
					time.Sleep(d)
				}
				doRequest("grid", tr.query)
			}
		}(plans[c])
	}
	close(startGate)
	wg.Wait()

	// Phase 3: the collapse burst — every client, one identical fresh
	// query against the slow dataset, all at once. The leader's long
	// execution window is what the followers attach to.
	burstQuery := "avg v[0,0 : 64,64] es {16,16}"
	executedBefore := reg.Counter("sidrd_jobs_done_total").Value()
	collapsedBefore := reg.Counter("sidrd_collapse_followers_total").Value()
	burstGate := make(chan struct{})
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-burstGate
			doRequest("slow", burstQuery)
		}()
	}
	close(burstGate)
	wg.Wait()
	out.Burst.Requests = clients
	out.Burst.JobsExecuted = reg.Counter("sidrd_jobs_done_total").Value() - executedBefore
	out.Burst.Collapsed = reg.Counter("sidrd_collapse_followers_total").Value() - collapsedBefore

	byClass := map[string][]time.Duration{}
	for _, s := range samples {
		byClass[s.class] = append(byClass[s.class], s.dur)
	}
	out.RequestsServed = reg.Counter("sidrd_jobs_submitted_total").Value()
	out.JobsExecuted = reg.Counter("sidrd_jobs_done_total").Value()
	out.Collapsed = reg.Counter("sidrd_collapse_followers_total").Value()
	out.CacheHits = reg.Counter("sidrd_resultcache_hits_total").Value()
	out.Errors = errs.Load()
	out.Cold = summarize(byClass["cold"])
	out.Cached = summarize(byClass["cached"])
	out.Collapse = summarize(byClass["collapsed"])
	if out.Cached.P50MS > 0 {
		out.CachedVsColdSpeedup = out.Cold.P50MS / out.Cached.P50MS
	}
	return out, nil
}
