package main

import (
	"context"
	"fmt"
	"net/http/httptest"
	"os"
	"sync"
	"time"

	"sidr/internal/cluster"
	"sidr/internal/exec"
)

// chaosResult is one clustered run of the chaos experiment: the same
// fixed-seed query with a configurable number of worker deaths injected
// mid-job (after the first keyblock commits). It measures what the
// paper's fault story costs end-to-end: time to first result, total
// latency, and how many Map tasks had to re-execute.
type chaosResult struct {
	Workers       int     `json:"workers"`
	KilledWorkers int     `json:"killed_workers"`
	Rows          int     `json:"rows"`
	FirstResultMS float64 `json:"first_result_ms"`
	TotalMS       float64 `json:"total_ms"`
	Reexecuted    int64   `json:"reexecuted"`
	Speculated    int64   `json:"speculated"`
}

func (r chaosResult) Format() string {
	return fmt.Sprintf("workers=%d killed=%d first=%.2fms total=%.2fms reexecuted=%d rows=%d",
		r.Workers, r.KilledWorkers, r.FirstResultMS, r.TotalMS, r.Reexecuted, r.Rows)
}

// chaosBench runs one clustered job across real worker HTTP servers on
// loopback, killing `kills` workers (server closed, spill dir deleted)
// the moment the first partial commits.
func chaosBench(seed int64, kills int) (chaosResult, error) {
	const workers = 3
	coord := cluster.NewCoordinator(cluster.CoordinatorConfig{
		HeartbeatTimeout: 30 * time.Second,
		RetryBase:        time.Millisecond,
		RetryMax:         20 * time.Millisecond,
		Seed:             seed,
	})
	defer coord.Close()

	type deadWorker struct {
		srv *httptest.Server
		dir string
	}
	var ws []deadWorker
	defer func() {
		for _, w := range ws {
			w.srv.Close()
			os.RemoveAll(w.dir)
		}
	}()
	for i := 0; i < workers; i++ {
		dir, err := os.MkdirTemp("", "sidrbench-chaos-*")
		if err != nil {
			return chaosResult{}, err
		}
		w, err := cluster.NewWorker(cluster.WorkerConfig{
			Name:     fmt.Sprintf("bench-w%d", i),
			SpillDir: dir,
		})
		if err != nil {
			os.RemoveAll(dir)
			return chaosResult{}, err
		}
		srv := httptest.NewServer(w)
		ws = append(ws, deadWorker{srv: srv, dir: dir})
		if err := coord.Register(fmt.Sprintf("bench-w%d", i), srv.URL); err != nil {
			return chaosResult{}, err
		}
	}

	ex := exec.New(4)
	defer ex.Close()

	var (
		mu     sync.Mutex
		first  time.Duration
		killed bool
		start  = time.Now()
	)
	res, err := coord.Run(context.Background(), cluster.JobSpec{
		Plan: cluster.JobPlan{
			Query:       "avg temp[0,0,0 : 30,24,24] es {1,4,4}",
			Engine:      "sidr",
			Reducers:    4,
			SplitPoints: 1500,
		},
		Dataset: cluster.DatasetSpec{
			Kind: "synthetic", Generator: "temperature",
			Seed: seed, Shape: []int64{30, 24, 24},
		},
		Exec: ex,
		OnPartial: func(cluster.ReduceResult) {
			mu.Lock()
			defer mu.Unlock()
			if first == 0 {
				first = time.Since(start)
			}
			if !killed && kills > 0 {
				// The first committed keyblock is the kill signal: the dying
				// workers' spills vanish mid-shuffle, their running Map
				// attempts die with them, and the survivors re-execute.
				killed = true
				for k := 0; k < kills && k < len(ws)-1; k++ {
					ws[k].srv.CloseClientConnections()
					ws[k].srv.Close()
					os.RemoveAll(ws[k].dir)
				}
			}
		},
	})
	if err != nil {
		return chaosResult{}, err
	}
	total := time.Since(start)
	rows := 0
	for _, out := range res.Outputs {
		rows += len(out.Keys)
	}
	return chaosResult{
		Workers:       workers,
		KilledWorkers: kills,
		Rows:          rows,
		FirstResultMS: float64(first) / float64(time.Millisecond),
		TotalMS:       float64(total) / float64(time.Millisecond),
		Reexecuted:    res.Counters.Reexecuted,
		Speculated:    res.Counters.Speculated,
	}, nil
}

// chaosExperiment runs the fixed-seed query with 0 and 1 injected
// worker deaths.
func chaosExperiment(seed int64) ([]chaosResult, error) {
	var out []chaosResult
	for _, kills := range []int{0, 1} {
		r, err := chaosBench(seed, kills)
		if err != nil {
			return nil, fmt.Errorf("chaos run (kills=%d): %w", kills, err)
		}
		out = append(out, r)
	}
	return out, nil
}
