package main

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"time"

	"sidr/internal/cluster"
	"sidr/internal/exec"
	"sidr/internal/hdfs"
	"sidr/internal/metrics"
)

// churnRun is one clustered run of the churn experiment: the fixed-seed
// query with one worker killed outright after the whole Map phase has
// committed (and, when replication is on, after every spill has a
// verified replica). The shuffle is gated shut until the kill, so every
// reduce dependency on the dead worker exercises the recovery
// discipline under test: replica re-fetch vs split re-execution.
type churnRun struct {
	Label                 string  `json:"label"`
	SpillReplicas         int     `json:"spill_replicas"`
	Rows                  int     `json:"rows"`
	TotalMS               float64 `json:"total_ms"`
	KillAtMS              float64 `json:"kill_at_ms"`
	RecoveryMS            float64 `json:"recovery_ms"`
	Reexecuted            int64   `json:"reexecuted"`
	ReplicaPushes         int64   `json:"replica_pushes"`
	ReplicaBytes          int64   `json:"replica_bytes"`
	ReplicaFetchFallbacks int64   `json:"replica_fetch_fallbacks"`
	ShuffleBytes          int64   `json:"shuffle_bytes"`
	DispatchLocal         int64   `json:"dispatch_local"`
	DispatchRemote        int64   `json:"dispatch_remote"`
}

func (r churnRun) Format() string {
	return fmt.Sprintf("%s: recovery=%.2fms total=%.2fms reexecuted=%d fallbacks=%d replica_bytes=%d local/remote=%d/%d",
		r.Label, r.RecoveryMS, r.TotalMS, r.Reexecuted, r.ReplicaFetchFallbacks,
		r.ReplicaBytes, r.DispatchLocal, r.DispatchRemote)
}

// churnResult pairs the two recovery disciplines and summarises the
// locality of the replicated run's Map dispatch.
type churnResult struct {
	Runs          []churnRun `json:"runs"`
	LocalityRatio float64    `json:"locality_ratio"`
}

// churnBench runs one clustered job across real worker HTTP servers on
// loopback with spill replication set to `replicas` (-1 disables),
// killing worker 0 (server closed, spill dir deleted) once recovery is
// fully set up, then opening the shuffle.
func churnBench(seed int64, replicas int, label string) (churnRun, error) {
	const (
		workers = 3
		splits  = 60 // 120 rows / 2 per split at SplitPoints 1500
	)
	reg := metrics.New()
	coord := cluster.NewCoordinator(cluster.CoordinatorConfig{
		HeartbeatTimeout: 30 * time.Second,
		RetryBase:        time.Millisecond,
		RetryMax:         20 * time.Millisecond,
		Seed:             seed,
		SpillReplicas:    replicas,
		Metrics:          reg,
	})
	defer coord.Close()

	names := make([]string, workers)
	for i := range names {
		names[i] = fmt.Sprintf("bench-w%d", i)
	}
	// 9 × 16KB blocks, 2× replicated across the 3 worker nodes: every
	// split carries location hints and most splits have a node-local
	// worker, so the dispatch locality ratio is meaningful.
	ns, err := hdfs.NewNamespace(names, hdfs.Config{BlockSize: 16 << 10, Replication: 2})
	if err != nil {
		return churnRun{}, err
	}
	shape := []int64{120, 24, 24}
	if err := ns.AddFile("bench", shape[0]*shape[1]*shape[2]*8); err != nil {
		return churnRun{}, err
	}

	gate := make(chan struct{})
	victimDead := make(chan struct{}) // unblocks the victim's gated handlers so its server can close
	type benchWorker struct {
		srv *httptest.Server
		dir string
	}
	ws := make([]*benchWorker, 0, workers)
	defer func() {
		for _, w := range ws {
			if w.srv != nil {
				w.srv.Close()
			}
			os.RemoveAll(w.dir)
		}
	}()
	for i := 0; i < workers; i++ {
		dir, err := os.MkdirTemp("", "sidrbench-churn-*")
		if err != nil {
			return churnRun{}, err
		}
		w, err := cluster.NewWorker(cluster.WorkerConfig{Name: names[i], SpillDir: dir})
		if err != nil {
			os.RemoveAll(dir)
			return churnRun{}, err
		}
		victim := i == 0
		var h http.Handler = w
		srv := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
			if strings.HasPrefix(r.URL.Path, "/v1/shuffle") {
				if victim {
					select {
					case <-victimDead:
						http.Error(rw, "killed", http.StatusServiceUnavailable)
						return
					case <-gate:
					}
					select {
					case <-victimDead:
						http.Error(rw, "killed", http.StatusServiceUnavailable)
						return
					default:
					}
				} else {
					select {
					case <-gate:
					case <-r.Context().Done():
						return
					}
				}
			}
			h.ServeHTTP(rw, r)
		}))
		ws = append(ws, &benchWorker{srv: srv, dir: dir})
		if err := coord.RegisterNode(names[i], srv.URL, names[i]); err != nil {
			return churnRun{}, err
		}
	}

	ex := exec.New(4)
	defer ex.Close()

	type outcome struct {
		res *cluster.JobResult
		err error
	}
	done := make(chan outcome, 1)
	start := time.Now()
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
		defer cancel()
		res, err := coord.Run(ctx, cluster.JobSpec{
			Plan: cluster.JobPlan{
				Query:       "avg temp[0,0,0 : 120,24,24] es {1,4,4}",
				Engine:      "sidr",
				Reducers:    4,
				SplitPoints: 1500,
			},
			Dataset: cluster.DatasetSpec{
				Kind: "synthetic", Generator: "temperature",
				Seed: seed, Shape: shape,
			},
			Namespace: ns,
			File:      "bench",
			Exec:      ex,
		})
		done <- outcome{res, err}
	}()

	// Kill only once recovery is fully set up — every Map committed and,
	// when replicating, every spill copied — so the two runs differ only
	// in the recovery discipline, not in dispatch-phase races.
	ready := func() bool {
		var maps int64
		for _, wi := range coord.Workers() {
			maps += wi.MapsDone
		}
		if maps < splits {
			return false
		}
		if replicas > 0 {
			return reg.Counter("sidrd_cluster_replica_pushes_total").Value() >= splits
		}
		return true
	}
	deadline := time.Now().Add(30 * time.Second)
	for !ready() && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	killAt := time.Since(start)
	close(victimDead)
	ws[0].srv.CloseClientConnections()
	ws[0].srv.Close()
	ws[0].srv = nil
	os.RemoveAll(ws[0].dir)
	close(gate)

	out := <-done
	if out.err != nil {
		return churnRun{}, out.err
	}
	total := time.Since(start)
	rows := 0
	for _, o := range out.res.Outputs {
		rows += len(o.Keys)
	}
	c := out.res.Counters
	return churnRun{
		Label:                 label,
		SpillReplicas:         replicas,
		Rows:                  rows,
		TotalMS:               float64(total) / float64(time.Millisecond),
		KillAtMS:              float64(killAt) / float64(time.Millisecond),
		RecoveryMS:            float64(total-killAt) / float64(time.Millisecond),
		Reexecuted:            c.Reexecuted,
		ReplicaPushes:         c.ReplicaPushes,
		ReplicaBytes:          c.ReplicaBytes,
		ReplicaFetchFallbacks: c.ReplicaFetchFallbacks,
		ShuffleBytes:          c.ShuffleBytes,
		DispatchLocal:         c.DispatchLocal,
		DispatchRemote:        c.DispatchRemote,
	}, nil
}

// churnExperiment runs the fixed-seed query under both recovery
// disciplines: death without replicas (re-execute the lost splits) and
// death with replicas (re-fetch from the copies).
func churnExperiment(seed int64) (churnResult, error) {
	var out churnResult
	noRep, err := churnBench(seed, -1, "death-no-replica")
	if err != nil {
		return out, fmt.Errorf("churn run (no replica): %w", err)
	}
	withRep, err := churnBench(seed, 1, "death-with-replica")
	if err != nil {
		return out, fmt.Errorf("churn run (replica): %w", err)
	}
	out.Runs = []churnRun{noRep, withRep}
	if t := withRep.DispatchLocal + withRep.DispatchRemote; t > 0 {
		out.LocalityRatio = float64(withRep.DispatchLocal) / float64(t)
	}
	return out, nil
}
