package main

import (
	"context"
	"fmt"
	"math"
	"reflect"
	"time"

	"sidr"
	"sidr/internal/sidx"
)

// pruneResult is the structural-index pruning experiment's summary: the
// same selective filter query timed on the real in-process engine with
// and without the sidx block-range index.
type pruneResult struct {
	Query        string `json:"query"`
	TotalSplits  int    `json:"total_splits"`
	KeptSplits   int    `json:"kept_splits"`
	PrunedSplits int    `json:"pruned_splits"`
	IndexBuildMS float64 `json:"index_build_ms"`
	IndexBytes   int64   `json:"index_bytes"`
	// Splits scanned = Map tasks dispatched: the pruned plan's is the
	// kept count, the unpruned plan's the full split set.
	UnindexedMS      float64 `json:"unindexed_ms"`
	IndexedMS        float64 `json:"indexed_ms"`
	UnindexedFirstMS float64 `json:"unindexed_first_ms"`
	IndexedFirstMS   float64 `json:"indexed_first_ms"`
	Speedup          float64 `json:"speedup"`
	Rows             int     `json:"rows"`
	Identical        bool    `json:"identical"`
}

func (r pruneResult) Format() string {
	return fmt.Sprintf("kept %d/%d splits (pruned %d)  unindexed %.1fms → indexed %.1fms (%.1fx)  first %.1fms → %.1fms  index %dB built in %.1fms  identical=%v",
		r.KeptSplits, r.TotalSplits, r.PrunedSplits,
		r.UnindexedMS, r.IndexedMS, r.Speedup,
		r.UnindexedFirstMS, r.IndexedFirstMS,
		r.IndexBytes, r.IndexBuildMS, r.Identical)
}

// pruneExperiment measures end-to-end what the structural index buys a
// selective query: a synthetic dataset confines its high values to the
// first 24 of 256 leading-dimension rows, so the filter's predicate is
// satisfiable in only 3 of 32 splits (<10%). Each configuration runs
// `runs` times and reports the fastest, and the experiment asserts the
// two paths returned byte-identical results.
func pruneExperiment(runs int) (pruneResult, error) {
	if runs < 1 {
		runs = 1
	}
	shape := []int64{256, 64, 16}
	const hotRows = 24
	fn := func(k []int64) float64 {
		v := math.Sin(float64(k[0]*31+k[1]*7+k[2])) * 40 // background in [-40, 40]
		if k[0] < hotRows {
			v += 1000
		}
		return v
	}
	ds, err := sidr.Synthetic(shape, fn)
	if err != nil {
		return pruneResult{}, err
	}
	const queryText = "filter_gt v[0,0,0 : 256,64,16] es {8,8,8} param 900"
	q, err := sidr.ParseQuery(queryText)
	if err != nil {
		return pruneResult{}, err
	}
	res := pruneResult{Query: queryText}

	buildStart := time.Now()
	vi, err := ds.BuildIndex(32)
	if err != nil {
		return pruneResult{}, err
	}
	res.IndexBuildMS = float64(time.Since(buildStart)) / float64(time.Millisecond)
	res.IndexBytes = (&sidx.Index{Vars: []*sidx.VarIndex{vi}}).EncodedSize()

	// 8192-point target splits: 32 splits of 8 rows each.
	opts := sidr.RunOptions{Engine: sidr.SIDR, Reducers: 4, SplitPoints: 8192}

	run := func(withIndex bool) (*sidr.Result, float64, float64, *sidr.Prepared, error) {
		o := opts
		if withIndex {
			o.Index = vi
		}
		prep, err := sidr.Prepare(shape, q, o)
		if err != nil {
			return nil, 0, 0, nil, err
		}
		var best *sidr.Result
		wall, first := math.Inf(1), math.Inf(1)
		for i := 0; i < runs; i++ {
			r, err := prep.Run(context.Background(), ds, o)
			if err != nil {
				return nil, 0, 0, nil, err
			}
			if ms := float64(r.Elapsed) / float64(time.Millisecond); ms < wall {
				wall = ms
				best = r
			}
			if ms := float64(r.FirstResult) / float64(time.Millisecond); ms < first {
				first = ms
			}
		}
		return best, wall, first, prep, nil
	}

	base, baseWall, baseFirst, basePrep, err := run(false)
	if err != nil {
		return pruneResult{}, err
	}
	indexed, idxWall, idxFirst, idxPrep, err := run(true)
	if err != nil {
		return pruneResult{}, err
	}

	res.TotalSplits = basePrep.SplitCount()
	res.KeptSplits = idxPrep.SplitCount()
	res.PrunedSplits = idxPrep.PrunedSplits()
	res.UnindexedMS = baseWall
	res.IndexedMS = idxWall
	res.UnindexedFirstMS = baseFirst
	res.IndexedFirstMS = idxFirst
	if idxWall > 0 {
		res.Speedup = baseWall / idxWall
	}
	res.Rows = len(indexed.Keys)
	res.Identical = reflect.DeepEqual(base.Keys, indexed.Keys) && reflect.DeepEqual(base.Values, indexed.Values)
	if !res.Identical {
		return res, fmt.Errorf("pruned and unpruned results diverge (%d vs %d rows)", len(indexed.Keys), len(base.Keys))
	}
	return res, nil
}
