// Command sidrquery runs a structural query over an ncfile dataset with
// any of the three engines, streaming early partial results as keyblocks
// commit.
//
// Usage:
//
//	sidrquery -data wind.ncf -engine sidr -reducers 4 \
//	    'median windspeed[0,0,0,0 : 144,36,36,10] es {2,36,36,10}'
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"sidr"
	"sidr/internal/wire"
)

func main() {
	var (
		data     = flag.String("data", "", "input .ncf path (required)")
		engineS  = flag.String("engine", "sidr", "engine: hadoop, scihadoop, sidr")
		reducers = flag.Int("reducers", 4, "reduce task count")
		workers  = flag.Int("workers", 0, "map/reduce worker bound (0 = GOMAXPROCS)")
		quiet    = flag.Bool("quiet", false, "suppress per-keyblock progress")
		jsonOut  = flag.Bool("json", false, "emit the final result as JSON on stdout (the daemon's wire format)")
		maxRows  = flag.Int("n", 10, "output rows to print (0 = all)")
		outDir   = flag.String("output", "", "directory for dense per-keyblock output files (SIDR engine only)")
	)
	flag.Parse()
	if *data == "" || flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: sidrquery -data FILE [flags] 'QUERY'")
		flag.Usage()
		os.Exit(2)
	}
	var engine sidr.Engine
	switch strings.ToLower(*engineS) {
	case "hadoop":
		engine = sidr.Hadoop
	case "scihadoop":
		engine = sidr.SciHadoop
	case "sidr":
		engine = sidr.SIDR
	default:
		fmt.Fprintf(os.Stderr, "sidrquery: unknown engine %q\n", *engineS)
		os.Exit(1)
	}

	q, err := sidr.ParseQuery(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "sidrquery: %v\n", err)
		os.Exit(1)
	}
	ds, err := sidr.Open(*data, q.Variable())
	if err != nil {
		fmt.Fprintf(os.Stderr, "sidrquery: %v\n", err)
		os.Exit(1)
	}
	defer ds.Close()

	start := time.Now()
	opts := sidr.RunOptions{Engine: engine, Reducers: *reducers, Workers: *workers}
	if !*quiet {
		opts.OnPartial = func(pr sidr.PartialResult) {
			fmt.Fprintf(os.Stderr, "  +%v keyblock %d: %d keys\n",
				time.Since(start).Round(time.Millisecond), pr.Keyblock, len(pr.Keys))
		}
	}
	res, err := sidr.Run(ds, q, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sidrquery: %v\n", err)
		os.Exit(1)
	}
	if *jsonOut {
		if err := json.NewEncoder(os.Stdout).Encode(wire.FromResult(res)); err != nil {
			fmt.Fprintf(os.Stderr, "sidrquery: %v\n", err)
			os.Exit(1)
		}
	} else {
		fmt.Printf("# %s engine=%v reducers=%d elapsed=%v first=%v connections=%d keys=%d\n",
			q, engine, *reducers, res.Elapsed.Round(time.Millisecond),
			res.FirstResult.Round(time.Millisecond), res.Connections, len(res.Keys))
		for i, k := range res.Keys {
			if *maxRows > 0 && i >= *maxRows {
				fmt.Printf("... %d more rows\n", len(res.Keys)-i)
				break
			}
			fmt.Printf("%v\t%v\n", k, res.Values[i])
		}
	}
	if *outDir != "" {
		paths, err := sidr.WriteDense(*outDir, ds, q, opts, res)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sidrquery: writing dense output: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %d dense keyblock files under %s\n", len(paths), *outDir)
	}
}
