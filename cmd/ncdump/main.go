// Command ncdump prints an ncfile container's structural metadata in the
// NetCDF notation of the paper's Figure 1, and optionally a slice of the
// data.
//
// Usage:
//
//	ncdump file.ncf
//	ncdump -var temperature -corner 0,0,0 -shape 1,2,3 file.ncf
package main

import (
	"flag"
	"fmt"
	"os"

	"sidr/internal/coords"
	"sidr/internal/ncfile"
)

func main() {
	var (
		varName = flag.String("var", "", "variable to dump data from (metadata only when empty)")
		cornerS = flag.String("corner", "", "slab corner, e.g. 0,0,0")
		shapeS  = flag.String("shape", "", "slab shape, e.g. 1,2,3")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: ncdump [flags] FILE")
		flag.Usage()
		os.Exit(2)
	}
	f, err := ncfile.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "ncdump: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()
	fmt.Print(f.Header().Describe())
	if *varName == "" {
		return
	}
	if *cornerS == "" || *shapeS == "" {
		fmt.Fprintln(os.Stderr, "ncdump: -var needs -corner and -shape")
		os.Exit(2)
	}
	corner, err := coords.ParseCoord(*cornerS)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ncdump: %v\n", err)
		os.Exit(1)
	}
	shape, err := coords.ParseShape(*shapeS)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ncdump: %v\n", err)
		os.Exit(1)
	}
	slab, err := coords.NewSlab(corner, shape)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ncdump: %v\n", err)
		os.Exit(1)
	}
	vals, err := f.ReadSlab(*varName, slab)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ncdump: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("data: %s %s =\n", *varName, slab)
	i := 0
	slab.Each(func(k coords.Coord) bool {
		fmt.Printf("\t%v = %g\n", k, vals[i])
		i++
		return true
	})
}
