// Command sidr-worker is one worker process of the distributed runtime:
// it registers with a coordinator (a sidrd with clustering enabled, or a
// standalone cluster.Coordinator), executes the Map task attempts the
// coordinator dispatches to it, writes partition+ keyblock spills with
// the kv codec, and serves them from its shuffle endpoint until the
// coordinator's Reduce tasks have fetched their I_ℓ dependency sets.
//
// Usage:
//
//	sidr-worker -addr 127.0.0.1:7101 -coordinator http://127.0.0.1:7171 \
//	    -name worker-1 -spill-dir /tmp/sidr-worker-1
//
// The worker heartbeats every -heartbeat; miss the coordinator's
// deadline and it is evicted, its spills declared lost, and its Map
// tasks re-executed elsewhere.
//
// SIGTERM drains instead of dying: the worker stops accepting Map
// dispatches but keeps serving its spills until every dependent reduce
// has fetched them or the coordinator has replicated them away, then
// exits cleanly (bounded by -drain-timeout; a second signal forces
// immediate shutdown). SIGINT shuts down immediately. The coordinator
// can also initiate a drain via its /v1/drain endpoint — the worker
// learns of it through the heartbeat response and runs the same path.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"sidr/internal/cluster"
	"sidr/internal/faultinject"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:0", "listen address")
		coordinator = flag.String("coordinator", "", "coordinator base URL (e.g. http://127.0.0.1:7171)")
		name        = flag.String("name", "", "worker identity (default: worker-<port>)")
		node        = flag.String("node", "", "locality identity: the HDFS namespace node this worker is co-located with (default: none)")
		spillDir    = flag.String("spill-dir", "", "spill directory (default: a temp dir)")
		advertise   = flag.String("advertise", "", "base URL the coordinator dials back (default: http://<addr>)")
		heartbeat   = flag.Duration("heartbeat", time.Second, "heartbeat period")
		drainTO     = flag.Duration("drain-timeout", 60*time.Second, "max time to wait for spill hand-off on SIGTERM drain")
		dialTO      = flag.Duration("dial-timeout", 0, "coordinator dial/TLS timeout (0 = 2s)")
		headerTO    = flag.Duration("header-timeout", 0, "coordinator response-header timeout (0 = 5s)")
		chaos       = flag.String("chaos", "", "fault-injection spec, e.g. \"seed=42,kill-after-maps=5,hang=0.05,match=/v1/shuffle/,flip=0.01\" (see internal/faultinject)")
		compress    = flag.Bool("spill-compress", false, "DEFLATE spill blocks (kv codec v3): Map-side CPU for smaller shuffle transfers")
	)
	flag.Parse()
	if err := run(*addr, *coordinator, *name, *node, *spillDir, *advertise, *heartbeat, *drainTO, *dialTO, *headerTO, *chaos, *compress); err != nil {
		fmt.Fprintf(os.Stderr, "sidr-worker: %v\n", err)
		os.Exit(1)
	}
}

func run(addr, coordinator, name, node, spillDir, advertise string, heartbeat, drainTO, dialTO, headerTO time.Duration, chaos string, compress bool) error {
	if coordinator == "" {
		return fmt.Errorf("-coordinator is required")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	boundAddr := ln.Addr().String()
	if name == "" {
		_, port, _ := net.SplitHostPort(boundAddr)
		name = "worker-" + port
	}
	if advertise == "" {
		advertise = "http://" + boundAddr
	}
	cleanup := func() {}
	if spillDir == "" {
		dir, err := os.MkdirTemp("", "sidr-worker-*")
		if err != nil {
			return err
		}
		spillDir = dir
		cleanup = func() { os.RemoveAll(dir) }
	} else {
		spillDir = filepath.Clean(spillDir)
	}
	defer cleanup()

	var inj *faultinject.Injector
	if chaos != "" {
		spec, err := faultinject.Parse(chaos)
		if err != nil {
			return fmt.Errorf("-chaos: %w", err)
		}
		inj = faultinject.New(spec)
		log.Printf("sidr-worker: CHAOS enabled: %s", chaos)
	}
	w, err := cluster.NewWorker(cluster.WorkerConfig{
		Name:           name,
		Node:           node,
		SpillDir:       spillDir,
		AdvertiseURL:   advertise,
		CoordinatorURL: coordinator,
		Heartbeat:      heartbeat,
		DialTimeout:    dialTO,
		HeaderTimeout:  headerTO,
		Chaos:          inj,
		SpillCompress:  compress,
		Logf:           log.Printf,
	})
	if err != nil {
		return err
	}
	defer w.Close()

	startCtx, stopStart := context.WithCancel(context.Background())
	defer stopStart()
	go w.Start(startCtx)

	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigCh)

	var handler http.Handler = w
	if inj != nil {
		// Response-side chaos (delay/drop/error/flip/slow) wraps the whole
		// worker API, so served spills can be corrupted or trickled too.
		handler = inj.Middleware(w)
	}
	httpSrv := &http.Server{Handler: handler}
	errCh := make(chan error, 1)
	go func() {
		log.Printf("sidr-worker: %q serving on %s (spills in %s), coordinator %s", name, boundAddr, spillDir, coordinator)
		errCh <- httpSrv.Serve(ln)
	}()

	drain := false
	select {
	case err := <-errCh:
		return err
	case sig := <-sigCh:
		drain = sig == syscall.SIGTERM
	case <-w.DrainSignal():
		// Coordinator-initiated drain, learned via the heartbeat response.
		drain = true
	}
	if drain {
		log.Printf("sidr-worker: draining (timeout %s; signal again to force shutdown)", drainTO)
		stopStart() // Drain runs its own heartbeat loop
		dctx, dcancel := context.WithTimeout(context.Background(), drainTO)
		go func() {
			select {
			case <-sigCh:
				log.Printf("sidr-worker: second signal; abandoning drain")
				dcancel()
			case <-dctx.Done():
			}
		}()
		if err := w.Drain(dctx); err != nil {
			log.Printf("sidr-worker: drain incomplete: %v", err)
		}
		dcancel()
	}
	log.Printf("sidr-worker: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("sidr-worker: http shutdown: %v", err)
	}
	// Nothing can be mid-write now: reclaim any temp files immediately.
	w.SweepTemps(0)
	log.Printf("sidr-worker: bye")
	return nil
}
