#!/usr/bin/env bash
# cluster_smoke.sh — end-to-end smoke test of the distributed runtime.
#
# Builds the binaries, generates a quickstart-shaped dataset, launches a
# clustered sidrd plus two sidr-worker processes, runs one query through
# POST /v1/query with {"cluster":true}, and asserts the streamed result
# is identical to the in-process engine's answer for the same request.
#
# Usage: scripts/cluster_smoke.sh [port]
set -euo pipefail

PORT="${1:-7171}"
BASE="http://127.0.0.1:${PORT}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
WORK="$(mktemp -d)"
BIN="$WORK/bin"
DATA="$WORK/data"
mkdir -p "$BIN" "$DATA"

PIDS=()
cleanup() {
  for pid in "${PIDS[@]:-}"; do
    kill "$pid" 2>/dev/null || true
  done
  wait 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

echo "== build"
(cd "$ROOT" && go build -o "$BIN" ./cmd/sidrd ./cmd/sidr-worker ./cmd/datagen)

echo "== datasets (quickstart shape + join inputs)"
"$BIN/datagen" -out "$DATA/temperature.ncf" -var temperature \
  -shape 365,50,40 -kind temperature -seed 1
"$BIN/datagen" -out "$DATA/left.ncf" -var a -shape 64,48 -kind integers -seed 11
"$BIN/datagen" -out "$DATA/right.ncf" -var b -shape 64,48 -kind zipf -skew 1.4 -seed 23

echo "== launch sidrd (clustered, replicated, 3-node namespace) + 3 workers"
"$BIN/sidrd" -addr "127.0.0.1:${PORT}" -data "$DATA" -cluster \
  -spill-replicas 1 -nodes node1,node2,node3 \
  >"$WORK/sidrd.log" 2>&1 &
PIDS+=($!)
WPIDS=()
for i in 1 2 3; do
  "$BIN/sidr-worker" -coordinator "$BASE" -name "smoke-w$i" -node "node$i" \
    -spill-dir "$WORK/spill$i" >"$WORK/worker$i.log" 2>&1 &
  PIDS+=($!)
  WPIDS+=($!)
done

metric() { # metric <base-url> <name> -> prints its value (0 when unset)
  curl -fsS "$1/metrics" | awk -v m="$2" '$1 == m {print $2; found=1} END {if (!found) print 0}'
}

echo "== wait for daemon + worker registration"
for _ in $(seq 1 100); do
  if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then break; fi
  sleep 0.1
done
curl -fsS "$BASE/healthz" >/dev/null
for _ in $(seq 1 100); do
  alive=$(curl -fsS "$BASE/v1/cluster/workers" \
    | python3 -c 'import json,sys; print(sum(1 for w in json.load(sys.stdin)["workers"] if w["alive"]))')
  [ "$alive" -ge 3 ] && break
  sleep 0.1
done
[ "$alive" -ge 3 ] || { echo "FAIL: only $alive workers registered"; exit 1; }
echo "   $alive workers alive"

QUERY='avg temperature[0,0,0 : 364,50,40] es {7,5,1}'
submit() { # submit <cluster-bool> [query] -> prints job id
  local q="${2:-$QUERY}"
  curl -fsS "$BASE/v1/query" -H 'Content-Type: application/json' \
    -d "{\"dataset\":\"temperature\",\"query\":\"$q\",\"engine\":\"sidr\",\"reducers\":4,\"cluster\":$1}" \
    | python3 -c 'import json,sys; print(json.load(sys.stdin)["id"])'
}
result_of() { # result_of <job-id> -> prints the done event's result JSON
  curl -fsSN "$BASE/v1/jobs/$1/stream" | python3 -c '
import json, sys
for line in sys.stdin:
    ev = json.loads(line)
    if ev["type"] == "done":
        r = ev["result"]
        print(json.dumps({"keys": r["keys"], "values": r["values"], "rows": r["rows"]}, sort_keys=True))
        sys.exit(0)
    if ev["type"] in ("failed", "cancelled"):
        sys.exit(f"job {ev}")
sys.exit("stream ended without a terminal event")'
}

echo "== clustered run"
CJOB=$(submit true)
result_of "$CJOB" >"$WORK/cluster.json"
echo "   job $CJOB done ($(python3 -c "import json;print(json.load(open('$WORK/cluster.json'))['rows'])") rows)"

echo "== in-process run"
LJOB=$(submit false)
result_of "$LJOB" >"$WORK/local.json"

echo "== compare"
if ! cmp -s "$WORK/cluster.json" "$WORK/local.json"; then
  echo "FAIL: clustered result differs from in-process result"
  diff "$WORK/cluster.json" "$WORK/local.json" | head -5
  exit 1
fi

mc=$(curl -fsS "$BASE/metrics" | grep -E '^sidrd_(cluster_tasks_dispatched_total|shuffle_connections_total|cluster_dispatch_(local|remote)_total|cluster_replica_pushes_total)' || true)
echo "$mc" | sed 's/^/   /'
echo "$mc" | grep -q 'sidrd_shuffle_connections_total' || { echo "FAIL: no shuffle metrics"; exit 1; }
# One 5.8MB file fits one 128MB block replicated to all 3 nodes, so
# every hinted dispatch must have found a node-local worker.
[ "$(metric "$BASE" sidrd_cluster_dispatch_local_total)" -gt 0 ] \
  || { echo "FAIL: no dispatch used block locality"; exit 1; }

echo "== structural index: registration built it, selective filter prunes through it"
curl -fsS "$BASE/v1/datasets" | python3 -c '
import json, sys
for ds in json.load(sys.stdin):
    if ds["name"] != "temperature":
        continue
    v = ds["variables"][0]
    status, blocks, nbytes = v["index_status"], v["index_blocks"], v["index_bytes"]
    if status not in ("built", "loaded"):
        sys.exit("index_status = " + status)
    if nbytes <= 0 or blocks <= 0:
        sys.exit("implausible index metadata: " + json.dumps(v))
    print("   index %s: %d blocks, %dB, %d default splits" % (status, blocks, nbytes, v["splits"]))
    sys.exit(0)
sys.exit("temperature dataset not listed")'
# Only mid-year days exceed 25°C in the seeded temperature data, so the
# predicate is satisfiable in a minority of leading-dimension splits.
FILTER_QUERY='filter_gt temperature[0,0,0 : 365,50,40] es {5,5,8} param 25'
FCJOB=$(submit true "$FILTER_QUERY")
result_of "$FCJOB" >"$WORK/filter_cluster.json"
FLJOB=$(submit false "$FILTER_QUERY")
result_of "$FLJOB" >"$WORK/filter_local.json"
if ! cmp -s "$WORK/filter_cluster.json" "$WORK/filter_local.json"; then
  echo "FAIL: pruned clustered filter differs from pruned in-process filter"
  diff "$WORK/filter_cluster.json" "$WORK/filter_local.json" | head -5
  exit 1
fi
echo "   filter results identical ($(python3 -c "import json;print(json.load(open('$WORK/filter_cluster.json'))['rows'])") rows)"
sx=$(curl -fsS "$BASE/metrics" | grep -E '^sidrd_sidx_' || true)
echo "$sx" | sed 's/^/   /'
echo "$sx" | grep -q 'sidrd_sidx_hits_total [1-9]' || { echo "FAIL: index never consulted"; exit 1; }
echo "$sx" | grep -q 'sidrd_sidx_pruned_splits_total [1-9]' || { echo "FAIL: index never pruned a split"; exit 1; }

echo "== structural join: two datasets, zipf-skewed side B, clustered vs in-process"
curl -fsS "$BASE/v1/datasets" | python3 -c '
import json, sys
names = {ds["name"] for ds in json.load(sys.stdin)}
missing = {"left", "right"} - names
if missing:
    sys.exit("join datasets not registered: %s" % sorted(missing))'
JOIN_QUERY='join javg a[0,0 : 64,48] es {8,8} with b[0,0 : 64,48] es {8,8}'
submit_join() { # submit_join <cluster-bool> -> prints job id
  curl -fsS "$BASE/v1/query" -H 'Content-Type: application/json' \
    -d "{\"dataset\":\"left\",\"dataset2\":\"right\",\"query\":\"$JOIN_QUERY\",\"engine\":\"sidr\",\"reducers\":4,\"max_skew\":16,\"cluster\":$1}" \
    | python3 -c 'import json,sys; print(json.load(sys.stdin)["id"])'
}
JCJOB=$(submit_join true)
result_of "$JCJOB" >"$WORK/join_cluster.json"
JLJOB=$(submit_join false)
result_of "$JLJOB" >"$WORK/join_local.json"
if ! cmp -s "$WORK/join_cluster.json" "$WORK/join_local.json"; then
  echo "FAIL: clustered join differs from in-process join"
  diff "$WORK/join_cluster.json" "$WORK/join_local.json" | head -5
  exit 1
fi
echo "   join results identical ($(python3 -c "import json;print(json.load(open('$WORK/join_cluster.json'))['rows'])") rows)"
curl -fsS "$BASE/v1/jobs/$JCJOB" | python3 -c '
import json, sys
v = json.load(sys.stdin)
if v.get("dataset2") != "right":
    sys.exit("job view dataset2 = %r" % v.get("dataset2"))
s = v.get("skew")
if not s or s.get("keyblocks", 0) <= 0:
    sys.exit("job view has no skew summary: %r" % s)
print("   skew: %d keyblocks, max/mean %.3f, gini %.3f" %
      (s["keyblocks"], s["max_over_mean"], s["gini"]))'
js=$(curl -fsS "$BASE/metrics" | grep -E '^sidrd_job_skew_' || true)
echo "$js" | sed 's/^/   /'
echo "$js" | grep -q 'sidrd_job_skew_keyblocks [1-9]' || { echo "FAIL: join skew gauges unset"; exit 1; }

echo "== chaos: SIGKILL one worker mid-job"
KJOB=$(submit true)
curl -fsSN "$BASE/v1/jobs/$KJOB/stream" >"$WORK/kill_stream.ndjson" &
STREAM_PID=$!
# Wait for the first committed keyblock, then kill worker 3 outright: its
# spills vanish mid-shuffle and its running Map tasks die with it.
for _ in $(seq 1 200); do
  grep -q '"type": *"partial"' "$WORK/kill_stream.ndjson" 2>/dev/null && break
  sleep 0.05
done
kill -9 "${WPIDS[2]}" 2>/dev/null || true
echo "   killed worker smoke-w3 (pid ${WPIDS[2]})"
wait "$STREAM_PID" || { echo "FAIL: stream for $KJOB aborted"; exit 1; }
python3 -c '
import json, sys
for line in open(sys.argv[1]):
    ev = json.loads(line)
    if ev["type"] == "done":
        r = ev["result"]
        print(json.dumps({"keys": r["keys"], "values": r["values"], "rows": r["rows"]}, sort_keys=True))
        sys.exit(0)
    if ev["type"] in ("failed", "cancelled"):
        sys.exit(f"job {ev}")
sys.exit("stream ended without a terminal event")' "$WORK/kill_stream.ndjson" >"$WORK/kill.json"
if ! cmp -s "$WORK/kill.json" "$WORK/local.json"; then
  echo "FAIL: post-kill result differs from in-process result"
  diff "$WORK/kill.json" "$WORK/local.json" | head -5
  exit 1
fi
reexec=$(curl -fsS "$BASE/metrics" | grep -E '^sidrd_cluster_reexecuted_total' || true)
echo "   ${reexec:-sidrd_cluster_reexecuted_total 0 (job outran the kill)}"
echo "   post-kill result identical to in-process engine"

echo "== drain: SIGTERM a worker mid-job; replicas must absorb the exit, zero re-executions"
# The drain leg gets its own daemon whose shuffle fetches are chaos-
# delayed 1.5s: reduces fetch well after the drained worker has handed
# off and exited, so its spills MUST be served from replicas. A plain
# daemon's jobs finish in ~0.3s — faster than any process can drain.
DPORT=$((PORT + 1))
DBASE="http://127.0.0.1:${DPORT}"
"$BIN/sidrd" -addr "127.0.0.1:${DPORT}" -data "$DATA" -cluster \
  -spill-replicas 1 -nodes node1,node2 \
  -chaos "seed=11,match=/v1/shuffle/,delay=1.0:1500ms" \
  >"$WORK/sidrd-drain.log" 2>&1 &
PIDS+=($!)
for i in 1 2; do
  "$BIN/sidr-worker" -coordinator "$DBASE" -name "smoke-b$i" -node "node$i" \
    -spill-dir "$WORK/spill-b$i" >"$WORK/worker-b$i.log" 2>&1 &
  PIDS+=($!)
done
for _ in $(seq 1 100); do
  curl -fsS "$DBASE/healthz" >/dev/null 2>&1 && break
  sleep 0.1
done
# One keyblock spanning every split: the single reduce only fetches
# after the whole map phase, well past the drained worker's exit.
DRAIN_QUERY='avg temperature[0,0,0 : 364,50,40] es {365,50,40}'
DLJOB=$(submit false "$DRAIN_QUERY")
result_of "$DLJOB" >"$WORK/drain_local.json"
submit_drain() { # -> prints job id (clustered, on the drain daemon)
  curl -fsS "$DBASE/v1/query" -H 'Content-Type: application/json' \
    -d "{\"dataset\":\"temperature\",\"query\":\"$DRAIN_QUERY\",\"engine\":\"sidr\",\"reducers\":4,\"cluster\":true}" \
    | python3 -c 'import json,sys; print(json.load(sys.stdin)["id"])'
}
drained_ok=0
for attempt in 1 2 3; do
  DNAME="smoke-d$attempt"
  "$BIN/sidr-worker" -coordinator "$DBASE" -name "$DNAME" -node node2 \
    -spill-dir "$WORK/spill-d$attempt" -heartbeat 50ms \
    >"$WORK/worker-d$attempt.log" 2>&1 &
  DPID=$!
  PIDS+=($DPID)
  for _ in $(seq 1 100); do
    curl -fsS "$DBASE/v1/cluster/workers" | grep -q "\"$DNAME\"" && break
    sleep 0.05
  done
  reexec_before=$(metric "$DBASE" sidrd_cluster_reexecuted_total)
  fb_before=$(metric "$DBASE" sidrd_cluster_replica_fetch_fallbacks_total)
  DJOB=$(submit_drain)
  : >"$WORK/drain_stream.ndjson"
  curl -fsSN "$DBASE/v1/jobs/$DJOB/stream" >"$WORK/drain_stream.ndjson" &
  STREAM_PID=$!
  # SIGTERM as soon as the target has committed its first Map: it
  # refuses further dispatches, waits for its spills to replicate,
  # deregisters, and exits — all before the delayed reduce fetches.
  for _ in $(seq 1 400); do
    curl -fsS "$DBASE/v1/cluster/workers" | python3 -c '
import json, sys
for w in json.load(sys.stdin)["workers"]:
    if w["name"] == sys.argv[1] and w.get("maps_done", 0) >= 1:
        sys.exit(0)
sys.exit(1)' "$DNAME" 2>/dev/null && break
    sleep 0.02
  done
  kill -TERM "$DPID"
  wait "$STREAM_PID" || { echo "FAIL: stream for $DJOB aborted"; exit 1; }
  python3 -c '
import json, sys
for line in open(sys.argv[1]):
    ev = json.loads(line)
    if ev["type"] == "done":
        r = ev["result"]
        print(json.dumps({"keys": r["keys"], "values": r["values"], "rows": r["rows"]}, sort_keys=True))
        sys.exit(0)
    if ev["type"] in ("failed", "cancelled"):
        sys.exit(f"job {ev}")
sys.exit("stream ended without a terminal event")' "$WORK/drain_stream.ndjson" >"$WORK/drain.json"
  if ! cmp -s "$WORK/drain.json" "$WORK/drain_local.json"; then
    echo "FAIL: post-drain result differs from in-process result"
    diff "$WORK/drain.json" "$WORK/drain_local.json" | head -5
    exit 1
  fi
  # Drain is not death: nothing may have been re-executed.
  reexec_after=$(metric "$DBASE" sidrd_cluster_reexecuted_total)
  if [ "$reexec_after" != "$reexec_before" ]; then
    echo "FAIL: drain caused re-executions ($reexec_before -> $reexec_after)"
    exit 1
  fi
  # The drained worker must actually exit (clean deregistration, not a hang).
  for _ in $(seq 1 400); do
    kill -0 "$DPID" 2>/dev/null || break
    sleep 0.05
  done
  if kill -0 "$DPID" 2>/dev/null; then
    echo "FAIL: drained worker $DNAME (pid $DPID) never exited"
    exit 1
  fi
  echo "   $DNAME drained and exited; result identical, re-executions unchanged ($reexec_after)"
  fb_after=$(metric "$DBASE" sidrd_cluster_replica_fetch_fallbacks_total)
  if [ "$fb_after" -gt "$fb_before" ]; then
    drained_ok=1
    echo "   replica fall-backs served $((fb_after - fb_before)) post-exit fetch(es)"
    break
  fi
  echo "   attempt $attempt: job outran the drain (all fetches hit the primary); retrying"
done
[ "$drained_ok" = 1 ] || { echo "FAIL: drain never exercised a replica fall-back"; exit 1; }
[ "$(metric "$DBASE" sidrd_cluster_replica_pushes_total)" -gt 0 ] \
  || { echo "FAIL: no spill was replicated"; exit 1; }

echo "PASS: clustered results identical to in-process engine (with and without worker loss)"
