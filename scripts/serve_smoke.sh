#!/usr/bin/env bash
# serve_smoke.sh — end-to-end smoke test of the serving-tier fast path.
#
# Builds sidrd, registers a dataset, and runs the same query twice:
# the first submission must execute cold, the second must be a recorded
# result-cache hit (snapshot result_cache_hit=true, metrics counter
# incremented) whose result bytes are identical to the first's. Also
# checks gzip responses decode to the identity bytes and that a tenant
# quota breach returns 429 with detail "tenant-quota".
#
# Usage: scripts/serve_smoke.sh [port]
set -euo pipefail

PORT="${1:-7191}"
BASE="http://127.0.0.1:${PORT}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
WORK="$(mktemp -d)"
BIN="$WORK/bin"
DATA="$WORK/data"
mkdir -p "$BIN" "$DATA"

PIDS=()
cleanup() {
  for pid in "${PIDS[@]:-}"; do
    kill "$pid" 2>/dev/null || true
  done
  wait 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

echo "== build"
(cd "$ROOT" && go build -o "$BIN" ./cmd/sidrd ./cmd/datagen)

echo "== dataset"
"$BIN/datagen" -out "$DATA/temperature.ncf" -var temperature \
  -shape 90,20,20 -kind temperature -seed 1
"$BIN/datagen" -out "$DATA/wind.ncf" -var windspeed \
  -shape 365,50,40 -kind windspeed -seed 2

echo "== launch sidrd (result cache on, tenant quota for acme, 1 job slot)"
"$BIN/sidrd" -addr "127.0.0.1:${PORT}" -data "$DATA" -max-jobs 1 \
  -result-cache-bytes $((16 << 20)) -tenant 'acme=1:2' \
  >"$WORK/sidrd.log" 2>&1 &
PIDS+=($!)

for _ in $(seq 1 100); do
  if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then break; fi
  sleep 0.1
done
curl -fsS "$BASE/healthz" >/dev/null

QUERY='avg temperature[0,0,0 : 90,20,20] es {9,4,4}'
submit() { # submit -> prints "<id> <result_cache_hit>"
  curl -fsS "$BASE/v1/query" -H 'Content-Type: application/json' \
    -d "{\"dataset\":\"temperature\",\"query\":\"$QUERY\",\"reducers\":4}" \
    | python3 -c 'import json,sys; s=json.load(sys.stdin); print(s["id"], str(s.get("result_cache_hit", False)).lower())'
}
wait_done() { # wait_done <job-id>
  for _ in $(seq 1 200); do
    st=$(curl -fsS "$BASE/v1/jobs/$1" \
      | python3 -c 'import json,sys; print(json.load(sys.stdin)["state"])')
    [ "$st" = "done" ] && return 0
    case "$st" in failed|cancelled) echo "FAIL: job $1 state $st"; exit 1;; esac
    sleep 0.05
  done
  echo "FAIL: job $1 never finished"; exit 1
}
result_of() { # result_of <job-id> -> canonical JSON of the result field
  curl -fsS "$BASE/v1/jobs/$1" | python3 -c '
import json, sys
print(json.dumps(json.load(sys.stdin)["result"], sort_keys=True))'
}

echo "== cold run"
read -r JOB1 HIT1 <<<"$(submit)"
[ "$HIT1" = "false" ] || { echo "FAIL: first submission claimed a cache hit"; exit 1; }
wait_done "$JOB1"
result_of "$JOB1" >"$WORK/first.json"

echo "== repeat run (must be a recorded cache hit, byte-identical)"
read -r JOB2 HIT2 <<<"$(submit)"
[ "$HIT2" = "true" ] || { echo "FAIL: repeat submission not marked result_cache_hit"; exit 1; }
wait_done "$JOB2"
result_of "$JOB2" >"$WORK/second.json"
if ! cmp -s "$WORK/first.json" "$WORK/second.json"; then
  echo "FAIL: cached result bytes differ from the cold run"
  diff "$WORK/first.json" "$WORK/second.json" | head -5
  exit 1
fi
curl -fsS "$BASE/metrics" | grep -q '^sidrd_resultcache_hits_total 1' \
  || { echo "FAIL: sidrd_resultcache_hits_total != 1"; exit 1; }
echo "   cache hit recorded, result bytes identical"

echo "== gzip fetch decodes to the identity bytes"
curl -fsS -H 'Accept-Encoding: identity' "$BASE/v1/jobs/$JOB1" >"$WORK/plain.json"
curl -fsS -H 'Accept-Encoding: gzip' "$BASE/v1/jobs/$JOB1" --compressed >"$WORK/gunzip.json"
cmp -s "$WORK/plain.json" "$WORK/gunzip.json" \
  || { echo "FAIL: gzip response decodes differently"; exit 1; }
echo "   gzip payload identical after decode"

echo "== tenant quota: a second in-flight acme job is a 429 tenant-quota"
# Occupy the single job slot with a long default-tenant median (730k
# points, one keyblock), so acme's next job queues — queued jobs count
# toward the quota — and its job after that breaches it.
SLOW='median windspeed[0,0,0 : 365,50,40] es {365,50,40}'
HOLD=$(curl -fsS "$BASE/v1/query" -H 'Content-Type: application/json' \
  -d "{\"dataset\":\"wind\",\"query\":\"$SLOW\",\"reducers\":1}" \
  | python3 -c 'import json,sys; print(json.load(sys.stdin)["id"])')
AJOB=$(curl -fsS "$BASE/v1/query" -H 'Content-Type: application/json' \
  -H 'X-SIDR-Tenant: acme' \
  -d "{\"dataset\":\"temperature\",\"query\":\"min temperature[0,0,0 : 90,20,20] es {9,4,4}\",\"reducers\":4}" \
  | python3 -c 'import json,sys; print(json.load(sys.stdin)["id"])')
code=$(curl -s -o "$WORK/quota.json" -w '%{http_code}' "$BASE/v1/query" \
  -H 'Content-Type: application/json' -H 'X-SIDR-Tenant: acme' \
  -d "{\"dataset\":\"temperature\",\"query\":\"sum temperature[0,0,0 : 90,20,20] es {9,4,4}\",\"reducers\":4}")
[ "$code" = "429" ] || { echo "FAIL: over-quota submit returned $code, want 429"; exit 1; }
grep -q '"tenant-quota"' "$WORK/quota.json" \
  || { echo "FAIL: 429 body lacks detail tenant-quota: $(cat "$WORK/quota.json")"; exit 1; }
wait_done "$HOLD"
wait_done "$AJOB"
echo "   quota breach rejected with 429 tenant-quota"

echo "PASS: repeat query served from cache byte-identically; gzip and tenant quotas behave"
