package sidr

import (
	"math"
	"math/rand"
	"testing"

	"sidr/internal/coords"
	"sidr/internal/datagen"
	"sidr/internal/ops"
)

// refJoin computes the join the slow, obvious way: for every tile of the
// join keyspace, gather each side's aggregate by scanning the tile's
// overlap with that side's input in row-major order (skipping NaN
// missing cells), then combine. Generators emit small integers, so float
// sums are exact and order-independent — the engine must match this
// reference bit for bit.
func refJoin(t *testing.T, q *Query, fa, fb func(coords.Coord) float64) ([][]int64, [][]float64) {
	t.Helper()
	qq := q.q
	space, err := qq.IntermediateSpace()
	if err != nil {
		t.Fatalf("IntermediateSpace: %v", err)
	}
	op, err := qq.JoinOp()
	if err != nil {
		t.Fatalf("JoinOp: %v", err)
	}
	var keys [][]int64
	var values [][]float64
	var iterErr error
	space.Each(func(kp coords.Coord) bool {
		tile, err := qq.Extraction.Tile(kp)
		if err != nil {
			iterErr = err
			return false
		}
		gather := func(input coords.Slab, fn func(coords.Coord) float64) ops.SideAgg {
			var agg ops.SideAgg
			ov, ok := tile.Intersect(input)
			if !ok {
				return agg
			}
			ov.Each(func(c coords.Coord) bool {
				v := fn(c)
				if math.IsNaN(v) {
					return true
				}
				agg.Sum += v
				agg.Count++
				if op.NeedsSamples() {
					agg.Samples = append(agg.Samples, v)
				}
				return true
			})
			return agg
		}
		a := gather(qq.Input, fa)
		b := gather(qq.Input2, fb)
		if out, ok := op.Combine(a, b); ok {
			keys = append(keys, append([]int64(nil), kp...))
			values = append(values, out)
		}
		return true
	})
	if iterErr != nil {
		t.Fatalf("reference: %v", iterErr)
	}
	return keys, values
}

func requireSameRows(t *testing.T, label string, wantK, gotK [][]int64, wantV, gotV [][]float64) {
	t.Helper()
	if len(gotK) != len(wantK) {
		t.Fatalf("%s: %d rows, reference has %d", label, len(gotK), len(wantK))
	}
	for i := range wantK {
		for d := range wantK[i] {
			if gotK[i][d] != wantK[i][d] {
				t.Fatalf("%s: row %d key %v, reference %v", label, i, gotK[i], wantK[i])
			}
		}
		if len(gotV[i]) != len(wantV[i]) {
			t.Fatalf("%s: row %d has %d values, reference %d", label, i, len(gotV[i]), len(wantV[i]))
		}
		for j := range wantV[i] {
			if math.Float64bits(gotV[i][j]) != math.Float64bits(wantV[i][j]) {
				t.Fatalf("%s: row %d value %d = %v (bits %x), reference %v (bits %x)",
					label, i, j, gotV[i][j], math.Float64bits(gotV[i][j]),
					wantV[i][j], math.Float64bits(wantV[i][j]))
			}
		}
	}
}

// TestJoinMatchesReference is the seeded property test: random join
// queries over uniform and zipf-skewed integer-valued synthetic data,
// with re-tiling both enabled and disabled, must be byte-identical to
// the naive per-tile reference.
func TestJoinMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(909))
	opNames := []string{"jsum", "javg", "jcorr"}
	for trial := 0; trial < 24; trial++ {
		n0 := 24 + rng.Int63n(41) // leading extent in [24, 64]
		n1 := 16 + rng.Int63n(33)
		es := []int64{4, 8, 16}[rng.Intn(3)]
		op := opNames[trial%len(opNames)]
		// Side B's input sometimes covers a smaller prefix region, so the
		// join space is a strict intersection.
		m0, m1 := n0, n1
		if trial%4 == 3 {
			m0 = es + rng.Int63n(n0-es)
			m1 = es + rng.Int63n(n1-es)
		}
		qs := joinQueryText(op, n0, n1, m0, m1, es)
		q, err := ParseQuery(qs)
		if err != nil {
			t.Fatalf("trial %d: parse %q: %v", trial, qs, err)
		}

		seedA, seedB := rng.Int63n(1000)+1, rng.Int63n(1000)+1
		fa := datagen.Integers(seedA)
		fb := datagen.Zipf(seedB, 1.0+rng.Float64())
		if trial%3 == 0 {
			fb = datagen.Integers(seedB) // uniform-vs-uniform round
		}
		dsA, err := Synthetic([]int64{n0, n1}, func(k []int64) float64 { return fa(coords.Coord(k)) })
		if err != nil {
			t.Fatal(err)
		}
		dsB, err := Synthetic([]int64{n0, n1}, func(k []int64) float64 { return fb(coords.Coord(k)) })
		if err != nil {
			t.Fatal(err)
		}

		wantK, wantV := refJoin(t, q, fa, fb)
		for _, noRetile := range []bool{false, true} {
			res, err := RunJoin(dsA, dsB, q, RunOptions{
				Engine:       SIDR,
				Reducers:     1 + rng.Intn(6),
				MaxSkew:      1 + rng.Int63n(64),
				NoJoinRetile: noRetile,
			})
			if err != nil {
				t.Fatalf("trial %d (%q, noRetile=%v): %v", trial, qs, noRetile, err)
			}
			label := qs
			if noRetile {
				label += " [no-retile]"
			}
			requireSameRows(t, label, wantK, res.Keys, wantV, res.Values)
		}
	}
}

func joinQueryText(op string, n0, n1, m0, m1, es int64) string {
	return "join " + op +
		" a[0,0 : " + itoa(n0) + "," + itoa(n1) + "] es {" + itoa(es) + "," + itoa(es) + "}" +
		" with b[0,0 : " + itoa(m0) + "," + itoa(m1) + "] es {" + itoa(es) + "," + itoa(es) + "}"
}

func itoa(n int64) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
