package sidr_test

import (
	"fmt"
	"sort"

	"sidr"
)

// checkerboard is a deterministic toy dataset: value = row + col.
func checkerboard(k []int64) float64 { return float64(k[0] + k[1]) }

// ExampleRun computes 2×2 block averages of a small grid with the SIDR
// engine.
func ExampleRun() {
	ds, err := sidr.Synthetic([]int64{4, 4}, checkerboard)
	if err != nil {
		panic(err)
	}
	defer ds.Close()
	q, err := sidr.ParseQuery("avg grid[0,0 : 4,4] es {2,2}")
	if err != nil {
		panic(err)
	}
	res, err := sidr.Run(ds, q, sidr.RunOptions{Engine: sidr.SIDR, Reducers: 2})
	if err != nil {
		panic(err)
	}
	for i, k := range res.Keys {
		fmt.Printf("%v -> %.1f\n", k, res.Values[i][0])
	}
	// Output:
	// [0 0] -> 1.0
	// [0 1] -> 3.0
	// [1 0] -> 3.0
	// [1 1] -> 5.0
}

// ExampleRun_earlyResults streams each keyblock as soon as its data
// dependencies are met.
func ExampleRun_earlyResults() {
	ds, _ := sidr.Synthetic([]int64{8, 2}, checkerboard)
	defer ds.Close()
	q, _ := sidr.ParseQuery("max grid[0,0 : 8,2] es {2,2}")
	var regions []int
	_, err := sidr.Run(ds, q, sidr.RunOptions{
		Engine:   sidr.SIDR,
		Reducers: 2,
		OnPartial: func(pr sidr.PartialResult) {
			regions = append(regions, pr.Keyblock)
		},
	})
	if err != nil {
		panic(err)
	}
	sort.Ints(regions)
	fmt.Println(regions)
	// Output:
	// [0 1]
}

// ExampleParseQuery shows the structural query syntax.
func ExampleParseQuery() {
	q, err := sidr.ParseQuery("median windspeed[0,0,0,0 : 7200,360,720,50] es {2,36,36,10}")
	if err != nil {
		panic(err)
	}
	space, _ := q.OutputSpace()
	fmt.Println(q.Variable(), space)
	// Output:
	// windspeed [3600 10 20 5]
}
